"""The interactive interface (paper Section 2: simple queries "can be typed
in at the user interface"; consulting "makes CORAL very convenient for
interactive program development").

:class:`Shell` is the testable core: ``execute(text)`` accepts anything the
declarative language accepts — facts, modules, queries — plus a few shell
commands, and returns printable output.  ``main`` wraps it in a read loop
(installed as the ``coral-shell`` console script).

Shell commands::

    @consult "file".           load a program/data file
    @stats.                    evaluation statistics
    @reset_stats.              zero the statistics
    @listing module pred form. show a rewritten program (debugging aid)
    @trace on. / @trace off.   derivation tracing (local session)
    @trace <trace-id>.         render a distributed trace as a hop tree
                               (remote mode): client, router, worker and
                               replica spans under one trace id; @trace.
                               alone shows the last trace this shell
                               sampled (docs/OBSERVABILITY.md)
    @why "path(1, 3)".         proof tree for a traced fact
    @profile "path(1, X)".     run a query under the profiler, print its report
    @explain "path(1, X)".     show the plan the optimizer would run;
                               @explain analyze "..." also runs and measures it
    @modules.                  loaded modules, their exports and flags
    @dump pred arity "file".   write a base relation as re-consultable facts
    @check.                    lint loaded modules for likely mistakes
    @connect host:port.        switch to remote mode: send everything to a
                               coral-server (python -m repro.server);
                               @connect host:port RATE. also head-samples
                               that fraction of requests into distributed
                               traces (@trace. to render the last one)
    @top.                      live server dashboard (remote mode): req/s,
                               fetch latency percentiles, memo/buffer hit
                               rates, active cursors; @top N I. samples N
                               times every I seconds
    @replicas.                 replication topology (remote mode): role,
                               changelog sequence, per-replica lag or
                               upstream health (docs/REPLICATION.md)
    @workers.                  shard fleet (remote mode, sharded server):
                               per-worker state, pid, restarts, req/s, and
                               the routing policy (docs/SHARDING.md)
    @promote.                  promote the connected replica to a writable
                               primary (failover runbook step)
    @subscribe "path(1, X)".   register a live query (docs/LIVE.md): the
                               answer set is kept continuously correct and
                               every committed change streams in as +/-
                               deltas; works locally and in remote mode
    @subs.                     list live subscriptions and print the deltas
                               that arrived since the last @subs
    @unsubscribe N.            cancel live subscription #N
    @disconnect.               leave remote mode, back to the local session
    @help.                     this text
    @quit. (or @exit.)         leave

In remote mode, program text and queries are consulted on the server's
shared database and answers stream back through server-side cursors;
``@stats.`` shows the server's connection/cursor/request counters.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from ..api import Session
from ..errors import CoralError
from ..language import parse_program

PROMPT = "coral> "
CONTINUATION = "...... "


class Shell:
    """A stateful interactive session wrapper."""

    def __init__(self, session: Optional[Session] = None) -> None:
        self.session = session if session is not None else Session()
        self.done = False
        #: a repro.client.RemoteSession while in remote mode, else None
        self.remote = None
        #: live subscriptions by shell-assigned number (docs/LIVE.md)
        self.subscriptions = {}
        self._next_sub = 0

    # -- command execution -------------------------------------------------------

    def execute(self, text: str) -> str:
        """Run one complete input (program text or shell command); returns
        the printable response."""
        stripped = text.strip()
        if not stripped:
            return ""
        if stripped.startswith("@"):
            handled = self._command(stripped)
            if handled is not None:
                return handled
        try:
            if self.remote is not None:
                results = self.remote.consult_string(text)
            else:
                results = self.session.consult_string(text)
        except CoralError as error:
            return f"error: {error}"
        lines: List[str] = []
        for result in results:
            answers = result.all()
            for answer in answers:
                shown = answer.variables()
                if shown:
                    lines.append(
                        ", ".join(f"{k} = {v}" for k, v in shown.items())
                    )
                else:
                    lines.append(str(answer.tuple))
            lines.append(f"{len(answers)} answer(s).")
        return "\n".join(lines)

    def _command(self, text: str) -> Optional[str]:
        body = text.rstrip(".").strip()
        parts = body.split()
        name = parts[0].lstrip("@")

        if name == "quit" or name == "exit":
            self._drop_subscriptions()
            if self.remote is not None:
                self.remote.close()
                self.remote = None
            self.done = True
            return "bye."
        if name == "connect":
            if len(parts) not in (2, 3) or ":" not in parts[1]:
                return "usage: @connect host:port. / @connect host:port rate."
            from ..client import RemoteSession

            host, _, port_text = parts[1].strip('"').rpartition(":")
            try:
                sample = float(parts[2]) if len(parts) == 3 else 0.0
                remote = RemoteSession(
                    host,
                    int(port_text),
                    trace_sample=sample,
                    process_name="shell",
                )
            except (ValueError, CoralError) as error:
                return f"error: {error}"
            if self.remote is not None:
                self._drop_subscriptions(kind="remote")
                self.remote.close()
            self.remote = remote
            return f"connected to {parts[1]} ({remote.server_info})."
        if name == "disconnect":
            if self.remote is None:
                return "not connected."
            self._drop_subscriptions(kind="remote")
            self.remote.close()
            self.remote = None
            return "disconnected; back to the local session."
        if name == "stats":
            if self.remote is not None:
                try:
                    stats = self.remote.stats()
                except CoralError as error:
                    return f"error: {error}"
                lines = [
                    f"connections: {stats['connections']}",
                    f"cursors: {stats['cursors']}",
                    f"requests: {stats['requests']}",
                ]
                # a shard router's STATS has no eval section (it owns no
                # database); a worker's/standalone server's does
                lines += [f"{k}: {v}" for k, v in stats.get("eval", {}).items()]
                return "\n".join(lines)
            snapshot = self.session.stats.snapshot()
            return "\n".join(f"{key}: {value}" for key, value in snapshot.items())
        if name == "reset_stats":
            self.session.stats.reset()
            return "statistics reset."
        if name == "consult":
            if len(parts) != 2:
                return 'usage: @consult "file".'
            path = parts[1].strip('"')
            try:
                self.session.consult(path)
            except (OSError, CoralError) as error:
                return f"error: {error}"
            return f"consulted {path}."
        if name == "listing":
            if len(parts) != 4:
                return "usage: @listing module pred form."
            module, pred, form = parts[1:4]
            try:
                compiled = self.session.modules.compiled_form(module, pred, form)
            except (KeyError, CoralError) as error:
                return f"error: {error}"
            return compiled.listing()
        if name == "trace":
            if len(parts) == 2 and parts[1] == "on":
                self.session.enable_tracing()
                return "tracing on."
            if len(parts) == 2 and parts[1] == "off":
                self.session.disable_tracing()
                return "tracing off."
            # @trace <id>. / @trace. — render a distributed trace's hop
            # tree, gathered cluster-wide over the TRACE op (remote mode)
            if len(parts) <= 2 and self.remote is not None:
                trace_id = parts[1].strip('"') if len(parts) == 2 else None
                if trace_id is None and self.remote.last_trace_id is None:
                    return (
                        "no trace sampled yet — reconnect with "
                        "@connect host:port rate. or pass a trace id."
                    )
                try:
                    spans = self.remote.trace(trace_id)
                except CoralError as error:
                    return f"error: {error}"
                from ..obs.disttrace import TraceCollector

                collector = TraceCollector()
                collector.add_spans(spans)
                return collector.tree(trace_id or self.remote.last_trace_id)
            return "usage: @trace on. / @trace off. / @trace <trace-id>."
        if name == "why":
            tracer = self.session.ctx.tracer
            if tracer is None:
                return "tracing is off (@trace on. first)."
            fact = body[len("@why") :].strip().strip('"')
            return tracer.why(fact)
        if name == "profile":
            query_text = body[len("@profile") :].strip().strip('"')
            if not query_text:
                return 'usage: @profile "path(1, X)".'
            try:
                with self.session.profile() as profiler:
                    answers = self.session.query(query_text).all()
            except CoralError as error:
                return f"error: {error}"
            return f"{len(answers)} answer(s).\n" + profiler.profile.render()
        if name == "explain":
            if self.remote is not None:
                return "@explain works on the local session (@disconnect. first)."
            rest = body[len("@explain") :].strip()
            analyze = False
            if rest.startswith("analyze"):
                analyze = True
                rest = rest[len("analyze") :].strip()
            query_text = rest.strip('"')
            if not query_text:
                return 'usage: @explain [analyze] "path(1, X)".'
            try:
                return self.session.explain(query_text, analyze=analyze)
            except CoralError as error:
                return f"error: {error}"
        if name == "top":
            if self.remote is None:
                return "@top needs a server (@connect host:port. first)."
            count, interval = 1, 2.0
            try:
                if len(parts) > 1:
                    count = int(parts[1])
                if len(parts) > 2:
                    interval = float(parts[2])
            except ValueError:
                return "usage: @top. / @top count interval."
            if count < 1 or interval < 0:
                return "usage: @top. / @top count interval."
            frames: List[str] = []
            try:
                for sample in range(count):
                    if sample:
                        time.sleep(interval)
                    frames.append(self._render_top(self.remote.stats()))
            except CoralError as error:
                frames.append(f"error: {error}")
            except KeyboardInterrupt:
                pass
            return "\n\n".join(frames)
        if name == "replicas":
            if self.remote is None:
                return "@replicas needs a server (@connect host:port. first)."
            try:
                stats = self.remote.stats()
            except CoralError as error:
                return f"error: {error}"
            return self._render_replicas(stats)
        if name == "workers":
            if self.remote is None:
                return "@workers needs a server (@connect host:port. first)."
            try:
                stats = self.remote.stats()
            except CoralError as error:
                return f"error: {error}"
            return self._render_workers(stats)
        if name == "promote":
            if self.remote is None:
                return "@promote needs a server (@connect host:port. first)."
            try:
                outcome = self.remote.promote()
            except CoralError as error:
                return f"error: {error}"
            if outcome.get("promoted"):
                return (
                    f"promoted to primary at changelog sequence "
                    f"#{outcome.get('last_seq', 0)}; writes accepted here now."
                )
            return "already the primary; nothing to do."
        if name == "subscribe":
            query_text = body[len("@subscribe") :].strip().strip('"')
            if not query_text:
                return 'usage: @subscribe "path(1, X)".'
            try:
                entry = self._open_subscription(query_text)
            except CoralError as error:
                return f"error: {error}"
            count = (
                len(entry["handle"].view())
                if entry["kind"] == "remote"
                else len(entry["handle"].snapshot())
            )
            return (
                f"subscription #{entry['id']} on {query_text!r}: "
                f"{count} answer(s) in the initial snapshot "
                f"(@subs. for deltas)."
            )
        if name == "subs":
            if not self.subscriptions:
                return "no live subscriptions (@subscribe \"...\". first)."
            return "\n".join(
                self._render_subscription(entry)
                for entry in self.subscriptions.values()
            )
        if name == "unsubscribe":
            if len(parts) != 2:
                return "usage: @unsubscribe N."
            try:
                sub_id = int(parts[1].lstrip("#"))
            except ValueError:
                return "usage: @unsubscribe N."
            entry = self.subscriptions.pop(sub_id, None)
            if entry is None:
                return f"no subscription #{sub_id}."
            self._close_subscription(entry)
            return f"subscription #{sub_id} closed."
        if name == "modules":
            loaded = self.session.modules.modules
            if not loaded:
                return "no modules loaded."
            lines = []
            for module_name, module in loaded.items():
                exports = ", ".join(
                    f"{e.pred}/{e.arity}({','.join(e.forms)})"
                    for e in module.exports
                )
                flags = " ".join(f"@{f.name}" for f in module.flags)
                lines.append(
                    f"{module_name}: exports {exports or '(none)'}"
                    + (f"  [{flags}]" if flags else "")
                )
            return "\n".join(lines)
        if name == "dump":
            if len(parts) != 4:
                return 'usage: @dump pred arity "file".'
            pred, arity_text, path = parts[1], parts[2], parts[3].strip('"')
            try:
                count = self.session.dump_relation(pred, int(arity_text), path)
            except (ValueError, CoralError) as error:
                return f"error: {error}"
            return f"wrote {count} facts to {path}."
        if name == "check":
            from ..lint import ProgramChecker

            checker = ProgramChecker(
                set(self.session.ctx.base_relations)
                | set(self.session.modules.exports),
                self.session.ctx.is_builtin,
            )
            findings = []
            for module in self.session.modules.modules.values():
                findings.extend(checker.check_module(module))
            if not findings:
                return "no problems found."
            return "\n".join(str(finding) for finding in findings)
        if name == "help":
            return __doc__ or ""
        # not a shell command: let the parser treat it as an annotation
        return None

    # -- live subscriptions (docs/LIVE.md) ---------------------------------------

    def _open_subscription(self, query_text: str) -> dict:
        """Register one live query against the current target (remote
        server or local session) and book-keep it under a shell number."""
        self._next_sub += 1
        entry = {
            "id": self._next_sub,
            "query": query_text,
            "pending": [],
            "closed": None,
        }
        if self.remote is not None:
            entry["kind"] = "remote"
            entry["handle"] = self.remote.subscribe(f"?- {query_text}.")
        else:
            entry["kind"] = "local"
            pending = entry["pending"]

            def on_close(reason, entry=entry):
                entry["closed"] = reason

            entry["handle"] = self.session.subscribe(
                f"?- {query_text}.", pending.extend, on_close
            )
        self.subscriptions[entry["id"]] = entry
        return entry

    def _render_subscription(self, entry: dict) -> str:
        """One ``@subs`` row: the folded view size plus any deltas that
        arrived since the last look."""
        lines = []
        if entry["kind"] == "remote":
            handle = entry["handle"]
            notes = []
            while not handle.closed:
                kind, payload = handle.poll(timeout=0.0)
                if kind == "deltas":
                    for sign, values in payload:
                        rendered = ", ".join(str(v) for v in values)
                        lines.append(f"    {'+' if sign > 0 else '-'} ({rendered})")
                elif kind == "resnapshot":
                    notes.append("resnapshot (the delta queue overflowed)")
                else:
                    if kind == "closed":
                        entry["closed"] = payload
                    break
            size = len(handle.view())
        else:
            for sign, tup in entry["pending"]:
                rendered = ", ".join(str(arg) for arg in tup.args)
                lines.append(f"    {'+' if sign > 0 else '-'} ({rendered})")
            entry["pending"].clear()
            notes = []
            size = len(entry["handle"].answers)
        state = f"CLOSED: {entry['closed']}" if entry["closed"] else f"{size} answer(s)"
        head = (
            f"#{entry['id']} {entry['query']}: {state}, "
            f"{len(lines)} delta(s) since last @subs"
        )
        for note in notes:
            lines.insert(0, f"    [{note}]")
        return "\n".join([head] + lines)

    def _close_subscription(self, entry: dict) -> None:
        try:
            if entry["kind"] == "remote":
                entry["handle"].close()
            else:
                self.session.unsubscribe(entry["handle"].view_id)
        except CoralError:
            pass

    def _drop_subscriptions(self, kind: Optional[str] = None) -> None:
        """Close every tracked subscription (optionally only one kind —
        leaving remote mode must not tear down local views)."""
        for sub_id in list(self.subscriptions):
            if kind is None or self.subscriptions[sub_id]["kind"] == kind:
                self._close_subscription(self.subscriptions.pop(sub_id))

    # -- dashboard rendering -----------------------------------------------------

    @staticmethod
    def _render_top(stats: dict) -> str:
        """One ``@top`` frame from a server STATS payload."""

        def _ms(seconds: float) -> str:
            return f"{seconds * 1e3:.1f}ms"

        def _hit_rate(counters: Optional[dict]) -> Optional[str]:
            if not counters:
                return None
            hits = counters.get("hits", 0)
            total = hits + counters.get("misses", 0)
            return f"{hits / total:.1%}" if total else "-"

        rates = stats.get("rates", {})
        connections = stats.get("connections", {})
        cursors = stats.get("cursors", {})
        lines = [
            f"coral-server @top  (window {rates.get('window_seconds', 0):g}s)",
            f"  requests/s: {rates.get('requests_per_second', 0.0):>8.1f}"
            f"   answers/s: {rates.get('answers_per_second', 0.0):>8.1f}"
            f"   total requests: {stats.get('requests', 0)}",
            f"  connections: {connections.get('active', 0)} active"
            f" / {connections.get('total', 0)} total"
            f"   cursors: {cursors.get('open', 0)} open"
            f" / {cursors.get('opened', 0)} opened",
        ]
        for op, snap in sorted(stats.get("latency", {}).items()):
            lines.append(
                f"  {op:<6} p50 {_ms(snap['p50']):>8}"
                f"  p99 {_ms(snap['p99']):>8}"
                f"  ({snap['count']} request(s))"
            )
        live = stats.get("live")
        if live:
            lines.append(
                f"  live: {live.get('subscriptions', 0)} subscription(s)"
                f"   deltas sent {live.get('deltas_sent', 0)}"
                f"   lag {live.get('queued', 0)}"
                f"   resnapshots {live.get('resnapshots', 0)}"
                f"   rebuilds {live.get('rebuilds', 0)}"
            )
        trace = stats.get("trace")
        if trace:
            lines.append(
                f"  trace: sample {trace.get('sample_rate', 0.0):g}"
                f"   spans {trace.get('spans_recorded', 0)}"
                f"   dropped {trace.get('spans_dropped', 0)} span(s)"
                f" / {trace.get('events_dropped', 0)} event(s)"
            )
        memo_rate = _hit_rate(stats.get("memo"))
        buffer_rate = _hit_rate(stats.get("buffer"))
        if memo_rate is not None or buffer_rate is not None:
            cache_bits = []
            if memo_rate is not None:
                cache_bits.append(f"memo hit rate: {memo_rate}")
            if buffer_rate is not None:
                cache_bits.append(f"buffer hit rate: {buffer_rate}")
            lines.append("  " + "   ".join(cache_bits))
        workers = stats.get("workers")
        if workers:
            # a sharded server: one breakdown row per worker, from the
            # router's aggregated STATS (docs/SHARDING.md)
            lines.append("  workers:")
            for index in sorted(workers, key=lambda key: int(key)):
                info = workers[index]
                worker_rates = info.get("rates") or {}
                state = info.get("state", "?")
                marker = "" if state == "up" else f"  [{state.upper()}]"
                lines.append(
                    f"    #{index} {state:<8}"
                    f" req/s {worker_rates.get('requests_per_second', 0.0):>7.1f}"
                    f"  answers/s {worker_rates.get('answers_per_second', 0.0):>7.1f}"
                    f"  restarts {info.get('restarts', 0)}{marker}"
                )
        return "\n".join(lines)

    @staticmethod
    def _render_workers(stats: dict) -> str:
        """The ``@workers`` view from a shard router's STATS payload."""
        workers = stats.get("workers")
        sharding = stats.get("sharding")
        if not workers:
            return (
                "no worker fleet: this server is not a shard router "
                "(start one with --workers N)."
            )
        lines = []
        if sharding:
            lines.append(
                f"fleet: {sharding.get('workers_up', '?')} of "
                f"{sharding.get('workers', '?')} workers up"
            )
            pins = dict(sharding.get("pins") or {})
            pins.update(sharding.get("learned_pins") or {})
            if pins:
                rendered = ", ".join(
                    f"{name}->{index}" for name, index in sorted(pins.items())
                )
                lines.append(f"pinned: {rendered}")
            partitioned = sharding.get("partitioned") or []
            if partitioned:
                lines.append(f"partitioned: {', '.join(partitioned)}")
        for index in sorted(workers, key=lambda key: int(key)):
            info = workers[index]
            worker_rates = info.get("rates") or {}
            cursors = info.get("cursors") or {}
            lines.append(
                f"  worker {index}: {info.get('state', '?')}"
                f"   {info.get('address') or 'no address'}"
                f"   pid {info.get('pid') or '?'}"
                f"   gen {info.get('generation', 0)}"
                f"   restarts {info.get('restarts', 0)}"
            )
            if worker_rates or cursors:
                lines.append(
                    f"    req/s {worker_rates.get('requests_per_second', 0.0):.1f}"
                    f"   answers/s {worker_rates.get('answers_per_second', 0.0):.1f}"
                    f"   cursors open {cursors.get('open', 0)}"
                    f"   requests {info.get('requests', 0)}"
                )
        return "\n".join(lines)

    @staticmethod
    def _render_replicas(stats: dict) -> str:
        """The ``@replicas`` view from a server STATS payload."""
        replication = stats.get("replication")
        if not replication or not replication.get("enabled", True):
            return (
                "replication is not enabled on this server "
                "(start it with --changelog or --replicate-from)."
            )
        lines = [
            f"role: {replication.get('role', stats.get('role', '?'))}"
            f"   changelog sequence: #{replication.get('last_seq', 0)}"
        ]
        replicas = replication.get("replicas")
        if replicas is not None:
            sync = replication.get("sync_replicas", 0)
            lines.append(
                f"sync_replicas: {sync}" if sync else "shipping: asynchronous"
            )
            if not replicas:
                lines.append("no replicas connected.")
            for name in sorted(replicas):
                info = replicas[name]
                lines.append(
                    f"  {name}: acked #{info.get('acked_seq', 0)}"
                    f"   lag {info.get('lag_records', 0)} record(s)"
                    f"   last ack {info.get('ack_age_seconds', 0):.1f}s ago"
                )
        upstream = replication.get("upstream")
        if upstream is not None:
            state = "connected" if upstream.get("connected") else "DISCONNECTED"
            lag_seconds = upstream.get("lag_seconds")
            lines.append(
                f"upstream {upstream.get('address', '?')}: {state}"
                f"   lag {upstream.get('lag_records', 0)} record(s)"
                + (
                    f"   silent {lag_seconds:.1f}s"
                    if lag_seconds is not None
                    else ""
                )
                + f"   reconnects {upstream.get('reconnects', 0)}"
            )
        return "\n".join(lines)

    # -- input chunking ---------------------------------------------------------------

    @staticmethod
    def input_complete(buffer: str) -> bool:
        """Heuristic used by the read loop: input is complete when it ends
        with ``.`` or ``?`` outside a module, or at ``end_module.``"""
        stripped = buffer.strip()
        if not stripped:
            return True
        if "module" in stripped.split() and "end_module" not in stripped:
            return False
        return stripped.endswith(".") or stripped.endswith("?")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``coral-shell`` console script."""
    argv = list(sys.argv[1:] if argv is None else argv)
    shell = Shell()
    for path in argv:
        print(shell.execute(f'@consult "{path}".'))
    print("CORAL reproduction shell — @help. for commands, @quit. to leave.")
    buffer = ""
    while not shell.done:
        try:
            line = input(CONTINUATION if buffer else PROMPT)
        except EOFError:
            print()
            break
        buffer += line + "\n"
        if Shell.input_complete(buffer):
            output = shell.execute(buffer)
            if output:
                print(output)
            buffer = ""
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
