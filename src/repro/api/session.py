"""The session: the top-level handle a user (or the interactive shell, or an
embedding Python program) drives the system through.

Section 2: a CORAL process consults programs and data from text files into
the single-user client, then answers queries typed at the interface or
issued by host-language code.  :class:`Session` is that process state:
an evaluation context (base relations + builtins), a module manager, and
optionally a storage server for persistent relations.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from ..builtins import BuiltinRegistry
from ..errors import (
    CoralError,
    EvaluationError,
    ResourceLimitError,
    SessionClosedError,
)
from ..eval.context import EvalContext
from ..eval.limits import ResourceLimits
from ..eval.memo import MemoCache, MemoPolicy
from ..language import Literal, Program, Query, parse_program, parse_query
from ..modules import ModuleManager
from ..optimizer import index_spec_from_annotation
from ..relations import HashRelation, Relation, Tuple
from ..storage import BufferPool, PersistentRelation, StorageServer
from ..terms import Arg, BindEnv, Trail, Var, from_arg, resolve, to_arg, unify
from ..terms.unify import unify_fact
from ..extensibility import TypeRegistry


class Answer:
    """One query answer: the matched tuple plus the query variables' values."""

    def __init__(self, tup: Tuple, bindings: Dict[str, Arg]) -> None:
        self.tuple = tup
        self._bindings = bindings

    def __getitem__(self, name: str) -> Any:
        """The Python value bound to a query variable, by name."""
        if name not in self._bindings:
            raise KeyError(f"no query variable named {name}")
        return from_arg(self._bindings[name])

    def term(self, name: str) -> Arg:
        """The raw term bound to a query variable."""
        return self._bindings[name]

    def variables(self) -> Dict[str, Any]:
        return {name: from_arg(term) for name, term in self._bindings.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._bindings.items())
        return f"Answer({inner})" if inner else f"Answer{self.tuple}"


class QueryResult:
    """A pull-based cursor over a query's answers (get-next-tuple at the
    top level, Section 5.6): iterate lazily, or call :meth:`all` /
    ``list(result)`` to materialize.

    If the owning session carries default :class:`ResourceLimits` (or
    :meth:`all` is called with ``timeout=``/``max_tuples=``), the guard is
    armed when the first answer is pulled and installed on the evaluation
    context for the duration of each pull; exceeding it raises
    :class:`~repro.errors.ResourceLimitError` and leaves the session usable.
    """

    def __init__(
        self,
        source: Iterator[Answer],
        ctx=None,
        limits: Optional["ResourceLimits"] = None,
    ) -> None:
        self._source = source
        self._cache: List[Answer] = []
        self._done = False
        self._ctx = ctx
        self._limits = limits
        self._armed = False

    def __iter__(self) -> Iterator[Answer]:
        for answer in self._cache:
            yield answer
        while True:
            answer = self.get_next()
            if answer is None:
                return
            yield answer

    def _notify_error(self, exc: CoralError) -> None:
        """Let an installed flight recorder see a dying pull (it dumps its
        ring for StorageError / ResourceLimitError).  Best-effort only: the
        notification must never mask the original error."""
        ctx = self._ctx
        obs = ctx.obs if ctx is not None else None
        if obs is None:
            return
        hook = getattr(obs, "on_error", None)
        if hook is None:
            return
        try:
            hook(exc)
        except Exception:
            pass

    def get_next(self) -> Optional[Answer]:
        if self._done:
            return None
        limits = self._limits
        if limits is None or self._ctx is None:
            try:
                answer = next(self._source, None)
            except CoralError as exc:
                self._notify_error(exc)
                raise
        else:
            if not self._armed:
                # the timeout clock spans the whole drain, not each pull
                limits.start(self._ctx.stats)
                self._armed = True
            previous = self._ctx.limits
            self._ctx.limits = limits
            try:
                answer = next(self._source, None)
            except ResourceLimitError as exc:
                self._done = True
                self._notify_error(exc)
                raise
            except CoralError as exc:
                self._notify_error(exc)
                raise
            finally:
                self._ctx.limits = previous
        if answer is None:
            self._done = True
            return None
        self._cache.append(answer)
        return answer

    def set_limits(self, limits: Optional["ResourceLimits"]) -> "QueryResult":
        """Swap in a fresh guard for subsequent pulls (re-arming the timeout
        clock).  The server uses this to bound each ``FETCH`` request
        independently; ``None`` removes the guard."""
        self._limits = limits
        self._armed = False
        return self

    def close(self) -> None:
        """Abandon the cursor (Section 5.4.3): no further answers will be
        pulled, and the underlying evaluation generator is closed so its
        relation cursors release immediately.  Idempotent; already-cached
        answers stay readable via :meth:`all`."""
        if not self._done:
            self._done = True
            closer = getattr(self._source, "close", None)
            if closer is not None:
                closer()

    def all(
        self,
        timeout: Optional[float] = None,
        max_tuples: Optional[int] = None,
    ) -> List[Answer]:
        """Materialize every answer.  ``timeout`` (seconds of wall clock)
        and ``max_tuples`` (derived-fact cap) bound just this drain,
        overriding any session-level limits."""
        if timeout is not None or max_tuples is not None:
            from ..eval.limits import ResourceLimits

            self._limits = ResourceLimits(timeout=timeout, max_tuples=max_tuples)
            self._armed = False
        while self.get_next() is not None:
            pass
        return list(self._cache)

    def __len__(self) -> int:
        return len(self.all())

    def tuples(self) -> List[tuple]:
        """All answers as plain Python tuples."""
        return [
            tuple(from_arg(arg) for arg in answer.tuple.args)
            for answer in self.all()
        ]


class Session:
    """A single-user CORAL process (Section 2)."""

    def __init__(
        self,
        builtins: Optional[BuiltinRegistry] = None,
        data_directory: Optional[str] = None,
        buffer_capacity: int = 64,
        limits: Optional[ResourceLimits] = None,
        memo: Union[None, bool, str, MemoPolicy] = None,
        compiled: Optional[str] = None,
    ) -> None:
        self.ctx = EvalContext(builtins)
        #: ``compiled="closure"`` / ``compiled="push"`` evaluates every
        #: module through that code generator by default (docs/COMPILED.md);
        #: an explicit ``@compiled(...)`` module annotation still wins
        self.modules = ModuleManager(self.ctx, default_compiled=compiled)
        #: default ResourceLimits applied to every query (None = unbounded);
        #: per-call ``QueryResult.all(timeout=...)`` overrides it
        self.limits = limits
        #: user-defined abstract data types (Section 7.1)
        self.types = TypeRegistry()
        self._server: Optional[StorageServer] = None
        self._pool: Optional[BufferPool] = None
        self._buffer_capacity = buffer_capacity
        #: cross-query answer cache (docs/MEMO.md).  ``memo=True`` memoizes
        #: every eligible module, ``memo="annotated"`` only modules carrying
        #: ``@memo``, a :class:`~repro.eval.memo.MemoPolicy` tunes budget and
        #: damage threshold; None/False disables.
        self.memo: Optional[MemoCache] = None
        #: live-query registry (docs/LIVE.md), created lazily by the first
        #: :meth:`subscribe`; None until then so sessions that never
        #: subscribe pay nothing on the update path
        self.live = None
        #: always-on bounded ring of recent events (repro.obs.flight);
        #: installed via :meth:`enable_flight_recorder`, None = off
        self.flight = None
        #: slow-query log (repro.obs.slowlog); queries whose evaluation
        #: exceeds its threshold append a plan-annotated JSONL entry
        self.slow_log = None
        #: the distributed trace context of the request currently being
        #: evaluated (repro.obs.disttrace) — set by the server around each
        #: traced dispatch so the slow-query log can tag its entries and
        #: force-sample threshold outliers; None when untraced
        self.current_trace = None
        if memo:
            if isinstance(memo, MemoPolicy):
                policy = memo
            elif memo == "annotated":
                policy = MemoPolicy(annotated_only=True)
            else:
                policy = MemoPolicy()
            self.memo = MemoCache(self.modules, policy)
            self.ctx.memo = self.memo
        self._install_update_builtins()
        if data_directory is not None:
            self.open_storage(data_directory, buffer_capacity)

    def _install_update_builtins(self) -> None:
        """``assertz/1`` and ``retract/1``: updates with side effects, for
        pipelined modules whose evaluation order is guaranteed (Section 5.2:
        "programmers can exploit this guarantee and use predicates like
        updates that involve side-effects")."""
        from ..errors import EvaluationError as _EvalError
        from ..terms import Atom, Functor

        def _target(args, env):
            term = resolve(args[0], env)
            if isinstance(term, Functor):
                return term.name, term.args
            if isinstance(term, Atom):
                return term.name, ()
            raise _EvalError(
                f"assertz/retract need a predicate term, got {term}"
            )

        def _assert_impl(args, env, trail):
            name, fact_args = _target(args, env)
            inserted = self.ctx.base_relation(name, len(fact_args)).insert(
                Tuple(tuple(fact_args))
            )
            if inserted:
                if self.ctx.memo is not None:
                    self.ctx.memo.on_insert((name, len(fact_args)))
                if self.ctx.live is not None:
                    self.ctx.live.on_insert((name, len(fact_args)))
            yield None

        def _retract_impl(args, env, trail):
            name, fact_args = _target(args, env)
            relation = self.ctx.base_relations.get((name, len(fact_args)))
            tup = Tuple(tuple(fact_args))
            if relation is not None and relation.delete(tup):
                if self.ctx.memo is not None:
                    self.ctx.memo.on_delete((name, len(fact_args)), tup)
                if self.ctx.live is not None:
                    self.ctx.live.on_delete((name, len(fact_args)), tup)
                yield None

        self.ctx.builtins.register_function(
            "assertz", 1, _assert_impl, pure=False
        )
        self.ctx.builtins.register_function(
            "retract", 1, _retract_impl, pure=False
        )

    # -- storage (the EXODUS client link, Section 2) ----------------------------

    def open_storage(
        self, directory: str, buffer_capacity: int = 64, faults=None
    ) -> None:
        """Open the page-based storage directory.  ``faults`` optionally
        threads a :class:`~repro.faults.FaultInjector` through the stack
        (crash tests)."""
        if self._server is not None:
            raise CoralError("storage is already open for this session")
        self._server = StorageServer(directory, faults=faults)
        self._pool = BufferPool(self._server, buffer_capacity)
        if (
            self.flight is not None
            and self._server.faults.observer is None
        ):
            # a recorder enabled before storage opened still sees faults
            self._server.faults.observer = self.flight

    @property
    def storage_pool(self) -> BufferPool:
        if self._pool is None:
            raise CoralError(
                "no storage directory opened (pass data_directory= or call "
                "open_storage)"
            )
        return self._pool

    def persistent_relation(
        self, name: str, arity: int, unique: bool = True
    ) -> PersistentRelation:
        """Create or re-open a persistent relation and register it as a base
        relation visible to rules."""
        relation = PersistentRelation(name, arity, self.storage_pool, unique)
        existing = self.ctx.base_relations.get((name, arity))
        if existing is None:
            self.ctx.register_base(relation)
        elif not isinstance(existing, PersistentRelation):
            raise CoralError(
                f"{name}/{arity} already exists as an in-memory relation"
            )
        return relation

    def close(self) -> None:
        """Flush dirty pages and release the storage stack.

        Idempotent and exception-safe: a second ``close()`` is a no-op, and
        a ``close()`` after the storage server was already torn down (an
        injected crash, an earlier explicit close) skips the flush instead
        of raising from ``flush_all()`` against closed page files.  If the
        flush itself fails, the server is still closed and the session's
        references cleared before the error propagates, so retrying cannot
        double-fault."""
        pool, server = self._pool, self._server
        self._pool = None
        self._server = None
        try:
            if pool is not None and server is not None and not server.closed:
                pool.flush_all()
        finally:
            if server is not None:
                server.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- consulting (Section 2) -----------------------------------------------------

    def consult(self, path: str) -> List[QueryResult]:
        """Consult a program/data file, loading modules and facts and
        running any queries it contains."""
        with open(path) as handle:
            return self.consult_string(
                handle.read(), base_directory=os.path.dirname(path)
            )

    def consult_string(
        self, source: str, base_directory: str = "."
    ) -> List[QueryResult]:
        program = parse_program(source)
        return self.load_program(program, base_directory)

    def load_program(
        self, program: Program, base_directory: str = "."
    ) -> List[QueryResult]:
        for command in program.commands:
            if command.name == "consult" and command.arguments:
                nested = command.arguments[0]
                if not os.path.isabs(nested):
                    nested = os.path.join(base_directory, nested)
                self.consult(nested)
        for module in program.modules:
            self.modules.load(module)
        changed_keys = set()
        for fact in program.facts:
            head = fact.head
            relation = self.ctx.base_relation(head.pred, len(head.args))
            args = head.args
            if len(self.types):
                args = tuple(self.types.reconstruct(arg) for arg in args)
            if relation.insert(Tuple(tuple(args))):
                changed_keys.add((head.pred, len(head.args)))
        if self.ctx.memo is not None:
            for key in changed_keys:
                self.ctx.memo.on_insert(key)
        if self.ctx.live is not None:
            for key in changed_keys:
                self.ctx.live.on_insert(key)
        for annotation in program.index_annotations:
            relation = self.ctx.base_relation(annotation.pred, annotation.arity)
            if isinstance(relation, HashRelation):
                relation.add_index(index_spec_from_annotation(annotation))
        return [self.query_literal(query.literal) for query in program.queries]

    # -- queries ----------------------------------------------------------------------

    def query(self, text: str) -> QueryResult:
        """Answer a textual query, e.g. ``session.query("path(1, X)")``."""
        return self.query_literal(parse_query(text).literal)

    def query_values(self, pred: str, *values: Any) -> QueryResult:
        """Programmatic query: Python values bind arguments, None leaves an
        argument free — ``session.query_values("path", 1, None)``."""
        args = tuple(
            Var("_") if value is None else to_arg(value) for value in values
        )
        return self.query_literal(Literal(pred, args))

    def query_literal(self, literal: Literal) -> QueryResult:
        relation = self.ctx.resolve(literal.pred, literal.arity)
        if (
            isinstance(relation, PersistentRelation)
            and relation.pool.server.closed
        ):
            # fail eagerly at query() time with a clear error, rather than
            # letting the dead storage stack surface something cryptic (or,
            # worse, silently resurrect closed page files) at first pull
            raise SessionClosedError(
                f"cannot query persistent relation {literal.pred}/"
                f"{literal.arity}: the session's storage was closed"
            )
        variable_names: Dict[int, str] = {}
        for arg in literal.args:
            for var in arg.variables():
                variable_names.setdefault(var.vid, var.name)

        def answers() -> Iterator[Answer]:
            # observability is sampled at first pull, not at query() time —
            # a profiler installed between the two still sees the query
            obs = self.ctx.obs
            slow = self.slow_log
            started = obs.begin_span() if obs is not None else 0.0
            if slow is not None:
                # accounting for the slow-query log: only time spent inside
                # this generator counts (resumed..yield segments), so a
                # consumer idling on a lazy cursor can't make a query "slow"
                stats_before = self.ctx.stats.snapshot()
                produced = 0
                finished = False
                eval_seconds = 0.0
                resumed = time.perf_counter()
            env = BindEnv()
            trail = Trail()
            cursor = relation.scan(literal.args, env)
            try:
                while True:
                    candidate = cursor.get_next()
                    if candidate is None:
                        if slow is not None:
                            finished = True
                        return
                    fact = candidate.renamed()
                    mark = trail.mark()
                    if unify_fact(literal.args, env, fact.args, trail):
                        bindings = {}
                        for arg in literal.args:
                            for var in arg.variables():
                                name = variable_names[var.vid]
                                if name not in bindings and name != "_":
                                    bindings[name] = resolve(var, env)
                        answer = Answer(
                            Tuple(
                                tuple(
                                    resolve(arg, env) for arg in literal.args
                                )
                            ),
                            bindings,
                        )
                        if slow is None:
                            yield answer
                        else:
                            produced += 1
                            eval_seconds += time.perf_counter() - resumed
                            try:
                                yield answer
                            finally:
                                # runs on normal resumption *and* on close
                                # at this yield, so the tail segment added
                                # in the outer finally starts counting here
                                resumed = time.perf_counter()
                    trail.undo_to(mark)
            finally:
                cursor.close()
                if obs is not None:
                    obs.end_span(
                        "query",
                        "eval",
                        started,
                        query=f"{literal.pred}/{literal.arity}",
                    )
                if slow is not None:
                    eval_seconds += time.perf_counter() - resumed
                    if eval_seconds >= slow.threshold:
                        after = self.ctx.stats.snapshot()
                        delta = {
                            key: after[key] - stats_before.get(key, 0)
                            for key in after
                        }
                        slow.observe(
                            self, literal, eval_seconds, produced,
                            delta, finished,
                        )

        return QueryResult(answers(), ctx=self.ctx, limits=self.limits)

    # -- imperative fact management (Section 6) -----------------------------------------

    def relation(self, name: str, arity: int) -> Relation:
        """The base relation handle (creating an in-memory one if new)."""
        return self.ctx.base_relation(name, arity)

    def register_type(self, name: str, cls) -> None:
        """Register a user abstract data type under a constructor name
        (Section 7.1): consulted facts mentioning ``name(...)`` re-create
        instances via ``cls.construct``."""
        self.types.register(name, cls)

    def register_relation(self, relation: Relation) -> None:
        """Install a custom relation implementation (Section 7.2) as a base
        relation — e.g. a :class:`repro.extensibility.FunctionRelation`."""
        self.ctx.register_base(relation)

    def dump_relation(self, name: str, arity: int, path: str) -> int:
        """Write a base relation to a text file as facts, re-consultable by
        any session (Section 2: "persistent data is stored either in text
        files, or using the EXODUS storage manager").  Returns the number of
        facts written; non-ground facts keep their universal variables."""
        relation = self.ctx.base_relation(name, arity, create=False)
        count = 0
        with open(path, "w") as handle:
            for tup in relation.scan():
                inner = ", ".join(str(arg) for arg in tup.args)
                handle.write(f"{name}({inner}).\n" if arity else f"{name}.\n")
                count += 1
        return count

    def insert(self, pred: str, *values: Any) -> bool:
        inserted = self.ctx.base_relation(
            pred, len(values)
        ).insert_values(*values)
        if inserted:
            if self.ctx.memo is not None:
                self.ctx.memo.on_insert((pred, len(values)))
            if self.ctx.live is not None:
                self.ctx.live.on_insert((pred, len(values)))
        return inserted

    def delete(self, pred: str, *values: Any) -> bool:
        relation = self.ctx.base_relation(pred, len(values), create=False)
        tup = Tuple(tuple(to_arg(v) for v in values))
        deleted = relation.delete(tup)
        if deleted:
            if self.ctx.memo is not None:
                self.ctx.memo.on_delete((pred, len(values)), tup)
            if self.ctx.live is not None:
                self.ctx.live.on_delete((pred, len(values)), tup)
        return deleted

    @property
    def stats(self):
        return self.ctx.stats

    # -- live queries (repro.live, docs/LIVE.md) -----------------------------------

    def subscribe(self, query: Union[str, Literal], on_deltas, on_close=None):
        """Register a live query: ``on_deltas`` receives a list of
        ``(+1, tuple)`` / ``(-1, tuple)`` deltas after every committed
        mutation that changes the goal's answer set.  Returns the
        :class:`~repro.live.LiveView` (its :meth:`~repro.live.LiveView
        .snapshot` is the initial answer set); pass the view's ``view_id``
        to :meth:`unsubscribe` to stop.  Raises
        :class:`~repro.errors.SubscriptionError` when the goal cannot be
        maintained incrementally (negation, aggregation, compiled modules,
        ... — docs/LIVE.md lists the refusal matrix)."""
        if self.live is None:
            from ..live import LiveViewManager

            self.live = LiveViewManager(self.ctx, self.modules)
            self.ctx.live = self.live
        literal = (
            parse_query(query).literal if isinstance(query, str) else query
        )
        return self.live.subscribe(literal, on_deltas, on_close)

    def unsubscribe(self, view_id: int) -> bool:
        """Deregister a live view by id; True if it was registered."""
        if self.live is None:
            return False
        return self.live.unsubscribe(view_id)

    # -- explanation (the tracing tool) ------------------------------------------

    def enable_tracing(self, limit: int = 100_000):
        """Turn on derivation recording for materialized evaluation and
        return the tracer; ``tracer.why("path(1, 3)")`` then prints a proof
        tree.  Costs time and memory — leave off in production runs."""
        from ..explain import DerivationTracer

        tracer = DerivationTracer(limit)
        self.ctx.tracer = tracer
        return tracer

    def disable_tracing(self) -> None:
        self.ctx.tracer = None

    def explain(self, query: str, analyze: bool = False) -> str:
        """The rendered evaluation plan for a textual query: module, chosen
        query form, rewriting technique, fixpoint strategy, SCC order, and
        each semi-naive rule with its body in join order.  With
        ``analyze=True`` the query is also *run* under a trace-free profiler
        and the rendering gains measured answers/iterations/per-rule costs.
        Same output as the shell's ``@explain`` and the slow-query log's
        ``plan`` field."""
        from ..explain.plan import explain as explain_plan

        return explain_plan(self, query, analyze=analyze)

    # -- observability (repro.obs) -------------------------------------------------

    def enable_flight_recorder(
        self,
        capacity: int = 4096,
        dump_path: Optional[str] = None,
        scan_stride: int = 16,
    ):
        """Install an always-on :class:`~repro.obs.flight.FlightRecorder`:
        a bounded ring of recent evaluation/storage events, cheap enough to
        leave enabled.  With ``dump_path`` set, the ring is written out as
        JSON lines when a storage fault fires or a query dies with
        ``StorageError``/``ResourceLimitError`` — a post-mortem without
        re-running under tracing.  ``session.profile()`` still works while
        a recorder is installed (the profiler borrows the observer slot and
        restores it).  Returns the recorder."""
        from ..obs.flight import FlightRecorder

        if self.ctx.obs is not None:
            raise CoralError(
                "an observer (profiler or flight recorder) is already "
                "installed on this session"
            )
        recorder = FlightRecorder(
            capacity=capacity, dump_path=dump_path, scan_stride=scan_stride
        )
        self.flight = recorder
        self.ctx.obs = recorder
        if self._server is not None and self._server.faults.observer is None:
            self._server.faults.observer = recorder
        return recorder

    def disable_flight_recorder(self) -> None:
        recorder = self.flight
        if recorder is None:
            return
        if self.ctx.obs is recorder:
            self.ctx.obs = None
        if (
            self._server is not None
            and self._server.faults.observer is recorder
        ):
            self._server.faults.observer = None
        self.flight = None

    def enable_slow_query_log(
        self, path: str, threshold: float = 1.0, analyze: bool = False
    ):
        """Append queries whose *evaluation time* exceeds ``threshold``
        seconds to ``path`` as JSON lines, each carrying the query text,
        wall/answer/eval-stat accounting, and its rendered plan (see
        :meth:`explain`).  ``analyze=True`` re-runs each offender under a
        profiler for per-rule costs (guarded against self-logging).
        Returns the :class:`~repro.obs.slowlog.SlowQueryLog`."""
        from ..obs.slowlog import SlowQueryLog

        self.slow_log = SlowQueryLog(path, threshold, analyze)
        return self.slow_log

    def disable_slow_query_log(self) -> None:
        self.slow_log = None

    def buffer_stats(self) -> Optional[Dict[str, int]]:
        """A snapshot of the buffer pool's hit/miss/eviction/writeback
        counters, or None for an in-memory session (the server's STATS and
        the ``@top`` dashboard read this)."""
        if self._pool is None:
            return None
        return self._pool.stats.snapshot()

    def profile(self, trace: bool = True, trace_limit: int = 200_000):
        """Profile everything evaluated inside a ``with`` block::

            with session.profile() as prof:
                session.query("path(1, X)").all()
            print(prof.profile.render())

        Returns a :class:`repro.obs.Profiler` context manager; on exit its
        ``profile`` attribute holds the structured :class:`QueryProfile`
        (rule applications, fixpoint iterations, subgoal timings, storage
        counters) plus the metrics registry and — unless ``trace=False`` —
        an event tracer exportable to JSON lines or ``chrome://tracing``.
        Profilers do not nest; the hooks cost one branch per site when no
        profiler is installed.
        """
        from ..obs import Profiler

        return Profiler(
            self.ctx,
            pool=self._pool,
            server=self._server,
            trace=trace,
            trace_limit=trace_limit,
        )
