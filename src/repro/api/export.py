"""Defining new predicates in the host language (paper Section 6.2).

*"Sometimes, it may be desirable to define a predicate using extended C++,
rather than the declarative language supported within CORAL modules.  A
_coral_export statement is used to declare the arguments of the predicate
being defined ... The CORAL primitive types are the only types that can be
used in a _coral_export declaration."*

:func:`coral_export` is the Python rendition: decorate a generator function
that receives the call's arguments as Python values (``None`` for unbound
positions) and yields result tuples; the decorator registers it as a builtin
so declarative rules can call it like any other predicate.  The primitive-
types-only restriction is enforced at the boundary, as in the paper.

:class:`ScanDescriptor` is the C_ScanDesc equivalent: an explicit cursor
over any relation for imperative code (Section 6.1).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, Tuple as PyTuple

from ..builtins.registry import BuiltinRegistry
from ..errors import EvaluationError
from ..relations import Relation, Tuple, TupleIterator
from ..terms import (
    Arg,
    Atom,
    BindEnv,
    Double,
    Int,
    Str,
    Trail,
    Var,
    deref,
    to_arg,
    unify,
)

#: a host predicate: takes one Python value (or None) per argument, yields
#: one tuple of Python values per solution
HostPredicate = Callable[..., Iterable[PyTuple[Any, ...]]]

_PRIMITIVES = (Int, Double, Str, Atom)


def _lower(term: Arg, env: BindEnv) -> Optional[Any]:
    term, _env = deref(term, env)
    if isinstance(term, Var):
        return None
    if isinstance(term, _PRIMITIVES):
        from ..terms import from_arg

        return from_arg(term)
    raise EvaluationError(
        f"host predicates accept primitive-typed arguments only "
        f"(Section 6.2); got {term}"
    )


def coral_export(
    registry: BuiltinRegistry,
    name: str,
    arity: int,
    pure: bool = True,
) -> Callable[[HostPredicate], HostPredicate]:
    """Register a Python generator function as predicate ``name/arity``.

    The function is called with one positional argument per predicate
    argument: the bound Python value, or None when unbound.  Every yielded
    tuple is unified against the call — positions the function returns must
    be primitive Python values.

    Example::

        @coral_export(session.ctx.builtins, "double", 2)
        def double(x, y):
            if x is not None:
                yield (x, 2 * x)
    """

    def decorate(function: HostPredicate) -> HostPredicate:
        def impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
            lowered = [_lower(arg, env) for arg in args]
            for result in function(*lowered):
                if len(result) != arity:
                    raise EvaluationError(
                        f"host predicate {name}/{arity} yielded a tuple of "
                        f"length {len(result)}"
                    )
                mark = trail.mark()
                if all(
                    unify(arg, env, to_arg(value), None, trail)
                    for arg, value in zip(args, result)
                ):
                    yield None
                trail.undo_to(mark)

        registry.register_function(name, arity, impl, pure=pure)
        return function

    return decorate


class ScanDescriptor:
    """An explicit cursor over a relation for imperative code — the paper's
    ``C_ScanDesc`` (Section 6.1).  Selections are given as Python values
    (None = wildcard); results come back as Python tuples."""

    def __init__(
        self, relation: Relation, selection: Optional[Sequence[Any]] = None
    ) -> None:
        from ..terms import from_arg

        self.relation = relation
        if selection is None:
            pattern = None
        else:
            if len(selection) != relation.arity:
                raise EvaluationError(
                    f"selection arity {len(selection)} != relation arity "
                    f"{relation.arity}"
                )
            pattern = [
                Var("_") if value is None else to_arg(value)
                for value in selection
            ]
        self._pattern = pattern
        self._cursor: TupleIterator = relation.scan(pattern, None)
        self._from_arg = from_arg

    def get_next(self) -> Optional[PyTuple[Any, ...]]:
        """The next matching tuple as Python values, or None at the end."""
        while True:
            candidate = self._cursor.get_next()
            if candidate is None:
                return None
            if self._pattern is not None and not self._matches(candidate):
                continue
            return tuple(self._from_arg(arg) for arg in candidate.args)

    def _matches(self, candidate: Tuple) -> bool:
        env = BindEnv()
        trail = Trail()
        fact = candidate.renamed()
        try:
            from ..terms.unify import unify_fact

            return unify_fact(self._pattern, env, fact.args, trail)
        finally:
            trail.undo_to(0)

    def close(self) -> None:
        self._cursor.close()

    def __iter__(self) -> Iterator[PyTuple[Any, ...]]:
        while True:
            row = self.get_next()
            if row is None:
                return
            yield row

    def __enter__(self) -> "ScanDescriptor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
