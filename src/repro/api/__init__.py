"""The imperative host-language interface (paper Section 6).

Python plays the role C++ played for CORAL: host programs construct and
scan relations without breaking the relation abstraction, embed declarative
modules (:meth:`Session.consult_string`), and define new predicates usable
from rules (:func:`coral_export`, the ``_coral_export`` mechanism of
Section 6.2).
"""

from .session import Answer, QueryResult, Session
from .export import coral_export, ScanDescriptor

__all__ = ["Answer", "QueryResult", "ScanDescriptor", "Session", "coral_export"]
