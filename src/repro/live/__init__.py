"""Live queries: incremental subscriptions over maintained views.

See :mod:`repro.live.view` for the machinery and docs/LIVE.md for the wire
protocol, delivery semantics, and refusal matrix.
"""

from .view import Delta, LiveStats, LiveView, LiveViewManager

__all__ = ["Delta", "LiveStats", "LiveView", "LiveViewManager"]
