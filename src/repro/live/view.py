"""Live queries: maintained materialized views pushing deltas to subscribers.

A :class:`LiveView` registers one goal — ``path(1, X)``, ``edge(X, Y)`` —
and keeps its answer set continuously correct as base facts change,
delivering the *difference* after every committed mutation as a list of
``(+1, tuple)`` / ``(-1, tuple)`` deltas: materialized views as a service,
the push analogue of the server's pull cursors (ROADMAP item 4).

Two kinds of view share one registry:

* **Derived views** — the goal's predicate is exported by a module.  The
  view holds a private retained
  :class:`~repro.modules.manager.MaterializedInstance` wrapped in a
  :class:`~repro.eval.maintenance.MaintenancePlan`, the same engine the
  memo cache uses: inserts are absorbed by EXT_DELTA fixpoint resumption,
  deletes by DRed delete-rederive.  Where the memo cache repairs *lazily*
  (entries marked stale, freshened at the next lookup) a live view repairs
  *eagerly*, at mutation time, because the delta itself is the product.
  The emitted delta is the keyed difference between the answer set before
  and after the repair — so even when a repair fails (damage threshold,
  any unexpected error) the view falls back to a full rebuild and still
  emits a correct difference, where the memo cache can only evict.

* **Base views** — the predicate is a plain base relation.  No fixpoint is
  needed: inserts are read straight off the relation's insertion marks
  (everything past the view's consumed mark), deletes arrive with the
  mutation hook; both are filtered through the goal's pattern.

Exactly-once, ordered delivery follows from the hook discipline: every
committed mutation (``Session.insert/delete``, consulted fact batches, the
``assertz``/``retract`` builtins, replicated changelog records) notifies
the :class:`LiveViewManager` once, synchronously, in commit order; each
notification produces at most one delta event per view.  Re-entrant
notifications (an ``assertz`` firing mid-repair) are queued and drained in
order rather than recursed into.

Programs the maintenance engine cannot repair — negation, aggregation,
compiled/ordered-search evaluation, multiset semantics, cross-module
calls, impure builtins, ``@save_module``/``@pipelining`` — are refused at
subscribe time with a typed :class:`~repro.errors.SubscriptionError`
naming the obstruction: the same list that demotes a memo entry to
evict-on-update (docs/LIVE.md has the full matrix).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from ..errors import SubscriptionError
from ..eval.maintenance import MaintenancePlan, plan_maintenance
from ..language.ast import Literal
from ..relations import MarkedRelation, Tuple
from ..terms import BindEnv, Trail, resolve
from ..terms.unify import unify_fact

PredKey = PyTuple[str, int]

#: one delta: (+1, tuple) for an arriving answer, (-1, tuple) for a leaving one
Delta = PyTuple[int, Tuple]

#: subscriber callback: one call per committed mutation that changed the view
DeltaSink = Callable[[List[Delta]], None]

#: optional teardown callback: the reason the view stopped being serviceable
CloseSink = Callable[[str], None]


@dataclass
class LiveStats:
    """Counters surfaced through ``LiveViewManager.snapshot()``, the
    server's STATS live section, and the ``/metrics`` exposition."""

    subscriptions: int = 0  # currently registered views
    subscribed_total: int = 0
    unsubscribed_total: int = 0
    refusals: int = 0  # SUBSCRIBE attempts rejected with SubscriptionError
    deltas_emitted: int = 0  # individual +/- tuples pushed to sinks
    events_emitted: int = 0  # non-empty delta batches pushed to sinks
    refreshes: int = 0  # incremental repairs (EXT_DELTA / DRed)
    rebuilds: int = 0  # full re-evaluations (damage threshold, repair failure)
    closes: int = 0  # views closed server-side (module unload/redefinition)

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))


class LiveView:
    """One registered goal and its continuously maintained answer set."""

    __slots__ = (
        "manager",
        "view_id",
        "literal",
        "pattern",
        "module_name",
        "form",
        "call_args",
        "instance",
        "plan",
        "base_key",
        "base_seen",
        "answers",
        "on_deltas",
        "on_close",
        "closed",
        "deltas_emitted",
        "rebuilds",
    )

    def __init__(self, manager: "LiveViewManager", view_id: int,
                 literal: Literal, on_deltas: DeltaSink,
                 on_close: Optional[CloseSink]) -> None:
        self.manager = manager
        self.view_id = view_id
        self.literal = literal
        #: the goal's argument pattern (constants bind, variables select)
        self.pattern = [resolve(arg, None) for arg in literal.args]
        self.module_name: Optional[str] = None
        self.form: Optional[str] = None
        self.call_args: Optional[list] = None
        self.instance = None
        self.plan: Optional[MaintenancePlan] = None
        self.base_key: Optional[PredKey] = None
        self.base_seen = 0
        #: current answer set, keyed for diffing (Tuple.key() -> Tuple)
        self.answers: Dict[object, Tuple] = {}
        self.on_deltas = on_deltas
        self.on_close = on_close
        self.closed = False
        self.deltas_emitted = 0
        self.rebuilds = 0

    @property
    def deps(self) -> Set[PredKey]:
        if self.base_key is not None:
            return {self.base_key}
        if self.plan is not None:
            return set(self.plan.deps)
        return set()

    def snapshot(self) -> List[Tuple]:
        """The current answer set (a copy; safe to hand to a cursor)."""
        return list(self.answers.values())

    # -- registration ----------------------------------------------------------

    def _matches(self, tup: Tuple) -> bool:
        env = BindEnv()
        trail = Trail()
        matched = unify_fact(self.pattern, env, tup.renamed().args, trail)
        trail.undo_to(0)
        return matched

    def _register(self) -> None:
        """Resolve the goal, refuse the unmaintainable, compute the initial
        answer set.  Raises :class:`SubscriptionError` on any obstruction."""
        manager = self.manager
        ctx = manager.ctx
        pred, arity = self.literal.pred, self.literal.arity
        if ctx.is_builtin(pred, arity):
            raise SubscriptionError(
                f"cannot subscribe to builtin {pred}/{arity}"
            )
        exported = manager.modules.exports.get((pred, arity))
        if exported is not None:
            self._register_derived(exported[0], exported[1])
        else:
            self._register_base(pred, arity)

    def _register_derived(self, module_name: str, export) -> None:
        manager = self.manager
        module = manager.modules.modules[module_name]
        if module.has_flag("pipelining"):
            raise SubscriptionError(
                f"module {module_name} is pipelined (@pipelining): it has "
                f"no materialized answer set to maintain"
            )
        if module.has_flag("save_module"):
            raise SubscriptionError(
                f"module {module_name} retains shared state across calls "
                f"(@save_module); a live view needs a private instance"
            )
        self.module_name = module_name
        bound = [arg.is_ground() for arg in self.pattern]
        self.form = manager.modules.choose_form(export, bound)
        from ..terms import Var

        self.call_args = [
            self.pattern[position] if flag == "b" else Var("_")
            for position, flag in enumerate(self.form)
        ]
        self._build_instance()

    def _build_instance(self) -> None:
        """(Re)compile a private instance + plan and evaluate it fully."""
        manager = self.manager
        instance = manager.modules.instance_for(
            self.module_name, self.literal.pred, self.form
        )
        plan = plan_maintenance(
            manager.ctx, instance, manager.modules.exports
        )
        if not plan.maintainable:
            raise SubscriptionError(
                f"{self.literal.pred}/{self.literal.arity} cannot be "
                f"maintained incrementally: {plan.reason}"
            )
        self.instance = instance
        self.plan = plan
        answers: Dict[object, Tuple] = {}
        cursor = instance.call(self.call_args)
        try:
            while True:
                candidate = cursor.get_next()
                if candidate is None:
                    break
                if self._matches(candidate):
                    answers[candidate.key()] = candidate
        finally:
            cursor.close()
        self.answers = answers
        # the evaluation consumed everything present in the base relations,
        # so re-sync the consumed marks to now (they were recorded pre-eval)
        plan.record_base_marks()

    def _register_base(self, pred: str, arity: int) -> None:
        relation = self.manager.ctx.base_relation(pred, arity)
        if not isinstance(relation, MarkedRelation):
            raise SubscriptionError(
                f"base relation {pred}/{arity} does not track insertion "
                f"marks; live views need them to stream inserts"
            )
        self.base_key = (pred, arity)
        answers: Dict[object, Tuple] = {}
        for tup in relation.scan():
            if self._matches(tup):
                answers[tup.key()] = tup
        self.answers = answers
        self.base_seen = relation.mark()

    # -- repair + delta emission ----------------------------------------------

    def _emit(self, deltas: List[Delta]) -> None:
        if not deltas:
            return
        stats = self.manager.stats
        stats.deltas_emitted += len(deltas)
        stats.events_emitted += 1
        self.deltas_emitted += len(deltas)
        self.on_deltas(deltas)

    def _apply(self, key: PredKey, deleted: Optional[Tuple]) -> None:
        """Absorb one committed mutation of base predicate ``key`` and push
        the resulting difference (possibly empty) to the sink."""
        if self.base_key is not None:
            self._apply_base(deleted)
        else:
            self._apply_derived(key, deleted)

    def _apply_base(self, deleted: Optional[Tuple]) -> None:
        deltas: List[Delta] = []
        if deleted is not None:
            removed = self.answers.pop(deleted.key(), None)
            if removed is not None:
                deltas.append((-1, removed))
        else:
            relation = self.manager.ctx.base_relation(*self.base_key)
            for tup in relation.scan(since=self.base_seen):
                if tup.key() not in self.answers and self._matches(tup):
                    self.answers[tup.key()] = tup
                    deltas.append((+1, tup))
            self.base_seen = relation.mark()
        self._emit(deltas)

    def _apply_derived(self, key: PredKey, deleted: Optional[Tuple]) -> None:
        plan = self.plan
        try:
            if deleted is not None:
                plan.apply_deletes(
                    {key: [deleted]}, self.manager.damage_threshold
                )
            plan.apply_inserts()
            plan.record_base_marks()
            self.manager.stats.refreshes += 1
        except Exception:
            # damage threshold or any repair failure: rebuild from scratch.
            # The delta stays correct either way — it is a diff against the
            # last *published* answer set, not a claim about the repair.
            self._rebuild()
            return
        self._emit(self._diff(self._collect()))

    def _collect(self) -> Dict[object, Tuple]:
        fresh: Dict[object, Tuple] = {}
        cursor = self.instance._answer_cursor(self.call_args, since=0)
        try:
            while True:
                candidate = cursor.get_next()
                if candidate is None:
                    break
                if self._matches(candidate):
                    fresh[candidate.key()] = candidate
        finally:
            cursor.close()
        return fresh

    def _diff(self, fresh: Dict[object, Tuple]) -> List[Delta]:
        deltas: List[Delta] = []
        for key, tup in self.answers.items():
            if key not in fresh:
                deltas.append((-1, tup))
        for key, tup in fresh.items():
            if key not in self.answers:
                deltas.append((+1, tup))
        self.answers = fresh
        return deltas

    def _rebuild(self) -> None:
        """Full re-evaluation against the current database, diffed against
        the last published answer set."""
        self.manager.stats.rebuilds += 1
        self.rebuilds += 1
        old = self.answers
        try:
            self._build_instance()
        except Exception as exc:
            self.manager._close_view(
                self, f"rebuild failed: {exc}"
            )
            return
        fresh = self.answers
        self.answers = old
        self._emit(self._diff(fresh))


class LiveViewManager:
    """The per-session registry of live views, installed as ``ctx.live``.

    Mutation hooks (:meth:`on_insert` / :meth:`on_delete`) arrive from the
    same call sites that notify the memo cache; each hook call is one
    committed mutation and produces at most one delta event per dependent
    view, in commit order.  Each view's repair state (pending deletes,
    consumed marks) lives in its own :class:`MaintenancePlan`, so a memo
    entry and a live view over the same predicate repair independently —
    neither consumes or double-applies the other's deltas."""

    def __init__(self, ctx, modules, damage_threshold: float = 0.5) -> None:
        self.ctx = ctx
        self.modules = modules
        #: DRed bail-out fraction, as MemoPolicy.damage_threshold — above
        #: it a view rebuilds instead of repairing (still emitting deltas)
        self.damage_threshold = damage_threshold
        self.stats = LiveStats()
        self._views: Dict[int, LiveView] = {}
        self._by_dep: Dict[PredKey, Set[int]] = {}
        self._next_id = 1
        self._queue: deque = deque()
        self._draining = False

    # -- registration ----------------------------------------------------------

    def subscribe(
        self,
        literal: Literal,
        on_deltas: DeltaSink,
        on_close: Optional[CloseSink] = None,
    ) -> LiveView:
        """Register a goal; returns the view with its initial answer set
        already computed (``view.snapshot()``).  Raises
        :class:`SubscriptionError` when the goal cannot be maintained."""
        view = LiveView(self, self._next_id, literal, on_deltas, on_close)
        try:
            view._register()
        except SubscriptionError:
            self.stats.refusals += 1
            self._trace("live.refuse", literal.pred, literal.arity)
            raise
        self._next_id += 1
        self._views[view.view_id] = view
        for dep in view.deps:
            self._by_dep.setdefault(dep, set()).add(view.view_id)
        self.stats.subscriptions = len(self._views)
        self.stats.subscribed_total += 1
        self._trace("live.subscribe", literal.pred, literal.arity,
                    view=view.view_id, answers=len(view.answers))
        return view

    def unsubscribe(self, view_id: int) -> bool:
        view = self._views.pop(view_id, None)
        if view is None:
            return False
        view.closed = True
        for dep in view.deps:
            bucket = self._by_dep.get(dep)
            if bucket is not None:
                bucket.discard(view_id)
                if not bucket:
                    del self._by_dep[dep]
        self.stats.subscriptions = len(self._views)
        self.stats.unsubscribed_total += 1
        self._trace("live.unsubscribe", view.literal.pred,
                    view.literal.arity, view=view_id)
        return True

    def _close_view(self, view: LiveView, reason: str) -> None:
        """Server-side teardown (module unloaded, rebuild impossible)."""
        if self.unsubscribe(view.view_id):
            self.stats.closes += 1
            if view.on_close is not None:
                view.on_close(reason)

    # -- mutation hooks (same call sites as ctx.memo) --------------------------

    def on_insert(self, key: PredKey) -> None:
        """One committed insert batch on base predicate ``key`` (the new
        tuples are read off the relation's insertion marks)."""
        self._notify(key, None)

    def on_delete(self, key: PredKey, tup: Tuple) -> None:
        """One committed delete of ``tup`` from base predicate ``key``."""
        self._notify(key, tup)

    def _notify(self, key: PredKey, deleted: Optional[Tuple]) -> None:
        if key not in self._by_dep:
            return
        self._queue.append((key, deleted))
        if self._draining:
            return  # re-entrant hook (assertz mid-repair): drain in order
        self._draining = True
        try:
            while self._queue:
                pending_key, pending_deleted = self._queue.popleft()
                for view_id in list(self._by_dep.get(pending_key, ())):
                    view = self._views.get(view_id)
                    if view is not None:
                        view._apply(pending_key, pending_deleted)
        finally:
            self._draining = False

    def on_modules_changed(self) -> None:
        """A module was loaded or unloaded: what any predicate resolves to
        may have changed.  Derived views rebuild (emitting the difference);
        views whose goal no longer resolves the same way are closed."""
        for view in list(self._views.values()):
            goal_key = (view.literal.pred, view.literal.arity)
            exported = self.modules.exports.get(goal_key)
            if view.base_key is not None:
                if exported is not None:
                    self._close_view(
                        view,
                        f"{goal_key[0]}/{goal_key[1]} is now derived by "
                        f"module {exported[0]}",
                    )
                continue
            if exported is None or exported[0] != view.module_name:
                self._close_view(
                    view,
                    f"{goal_key[0]}/{goal_key[1]} is no longer exported by "
                    f"module {view.module_name}",
                )
                continue
            old_deps = view.deps
            view._rebuild()
            if view.closed:
                continue
            if view.deps != old_deps:
                for dep in old_deps:
                    bucket = self._by_dep.get(dep)
                    if bucket is not None:
                        bucket.discard(view.view_id)
                        if not bucket:
                            del self._by_dep[dep]
                for dep in view.deps:
                    self._by_dep.setdefault(dep, set()).add(view.view_id)

    # -- bookkeeping -----------------------------------------------------------

    def views(self) -> List[LiveView]:
        return list(self._views.values())

    def snapshot(self) -> Dict[str, int]:
        return self.stats.snapshot()

    def _trace(self, name: str, pred: str, arity: int, **extra) -> None:
        obs = self.ctx.obs
        if obs is not None:
            obs.event(name, cat="live", pred=f"{pred}/{arity}", **extra)
