"""Modules, exports, and inter-module calls (paper Sections 5, 5.6).

*"Modules export the predicates that they define; a predicate exported from
one module is visible to all other modules, and can be used by them in
rules ... The interface to relations exported by a module makes no
assumptions about the evaluation of the module."*

The :class:`ModuleManager` registers every export as a resolver on the
evaluation context; any literal anywhere that mentions an exported predicate
scans an :class:`ExportedRelation`, whose cursor transparently sets up a
module call: pick a compiled query form matching the call's bound arguments,
instantiate (or reuse, under save-module) a :class:`MaterializedInstance`,
seed its magic relation, and stream answers — per fixpoint iteration for
lazy modules, all at once for eager ones, one suspended proof at a time for
pipelined modules.  The caller cannot tell the difference (Section 5.6's
inter-module call rule).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from ..errors import ModuleError
from ..eval.aggregates import AggregateConstraint
from ..eval.context import EvalContext, LocalScope
from ..eval.fixpoint import SCCEvaluator
from ..eval.ordered import OrderedSearchEvaluator
from ..eval.pipeline import PipelinedModule
from ..language.ast import ExportDecl, ModuleDecl
from ..optimizer import CompiledForm, Optimizer
from ..relations import (
    GeneratorTupleIterator,
    HashRelation,
    Relation,
    Tuple,
    TupleIterator,
)
from ..terms import Arg, BindEnv, resolve

PredKey = PyTuple[str, int]


class ModuleManager:
    """Loads modules, compiles query forms on demand, and routes calls."""

    def __init__(
        self, ctx: EvalContext, default_compiled: Optional[str] = None
    ) -> None:
        self.ctx = ctx
        self.optimizer = Optimizer(
            ctx.is_builtin, ctx.builtins.lookup, default_compiled=default_compiled
        )
        self.modules: Dict[str, ModuleDecl] = {}
        self.exports: Dict[PredKey, PyTuple[str, ExportDecl]] = {}
        self._compiled: Dict[PyTuple[str, str, str], CompiledForm] = {}
        self._pipelined: Dict[str, PipelinedModule] = {}
        self._saved: Dict[PyTuple[str, str, str], "MaterializedInstance"] = {}
        ctx.add_resolver(self._resolve)

    # -- loading --------------------------------------------------------------

    def load(self, module: ModuleDecl) -> None:
        if module.name in self.modules:
            raise ModuleError(f"module {module.name} is already loaded")
        defined = set(module.defined_predicates())
        for export in module.exports:
            key = (export.pred, export.arity)
            if key not in defined:
                raise ModuleError(
                    f"module {module.name} exports undefined predicate "
                    f"{export.pred}/{export.arity}"
                )
            if key in self.exports:
                other = self.exports[key][0]
                raise ModuleError(
                    f"{export.pred}/{export.arity} is already exported by "
                    f"module {other}"
                )
        self.modules[module.name] = module
        for export in module.exports:
            self.exports[(export.pred, export.arity)] = (module.name, export)
        if module.has_flag("pipelining"):
            self._pipelined[module.name] = PipelinedModule(self.ctx, module)
        if self.ctx.memo is not None:
            # loading can change what any predicate name resolves to
            self.ctx.memo.clear()
        if self.ctx.live is not None:
            self.ctx.live.on_modules_changed()

    def unload(self, name: str) -> None:
        module = self.modules.pop(name, None)
        if module is None:
            raise ModuleError(f"module {name} is not loaded")
        for export in module.exports:
            self.exports.pop((export.pred, export.arity), None)
        self._pipelined.pop(name, None)
        for key in [k for k in self._compiled if k[0] == name]:
            del self._compiled[key]
        for key in [k for k in self._saved if k[0] == name]:
            del self._saved[key]
        if self.ctx.memo is not None:
            self.ctx.memo.clear()
        if self.ctx.live is not None:
            self.ctx.live.on_modules_changed()

    # -- resolution (Section 5.6) -------------------------------------------------

    def _resolve(self, name: str, arity: int) -> Optional[Relation]:
        entry = self.exports.get((name, arity))
        if entry is None:
            return None
        module_name, export = entry
        return ExportedRelation(self, module_name, export)

    # -- compilation ------------------------------------------------------------

    def compiled_form(
        self, module_name: str, pred: str, adornment: str
    ) -> CompiledForm:
        key = (module_name, pred, adornment)
        compiled = self._compiled.get(key)
        if compiled is None:
            obs = self.ctx.obs
            if obs is None:
                compiled = self.optimizer.compile(
                    self.modules[module_name], pred, adornment
                )
            else:
                with obs.span(
                    "rewrite",
                    cat="compile",
                    module=module_name,
                    pred=pred,
                    form=adornment,
                ):
                    compiled = self.optimizer.compile(
                        self.modules[module_name], pred, adornment
                    )
            self._compiled[key] = compiled
        return compiled

    def choose_form(self, export: ExportDecl, call_bound: Sequence[bool]) -> str:
        """The declared query form to compile for, given which call
        arguments are actually bound: the form propagating the most
        bindings among those it can serve (a form may only mark 'b' where
        the call is bound).  Falls back to all-free evaluation (bindings
        become a final selection, Section 4.1) when no declared form fits."""
        best: Optional[str] = None
        for form in export.forms:
            usable = all(
                flag == "f" or call_bound[position]
                for position, flag in enumerate(form)
            )
            if usable and (best is None or form.count("b") > best.count("b")):
                best = form
        return best if best is not None else "f" * export.arity

    # -- instances --------------------------------------------------------------------

    def instance_for(
        self, module_name: str, pred: str, adornment: str
    ) -> "MaterializedInstance":
        compiled = self.compiled_form(module_name, pred, adornment)
        if compiled.save_module:
            key = (module_name, pred, adornment)
            instance = self._saved.get(key)
            if instance is None:
                instance = MaterializedInstance(self.ctx, compiled)
                self._saved[key] = instance
            return instance
        return MaterializedInstance(self.ctx, compiled)

    def pipelined(self, module_name: str) -> Optional[PipelinedModule]:
        return self._pipelined.get(module_name)


class ExportedRelation(Relation):
    """The relation face of an exported predicate: scanning it *is* calling
    the module (Section 5.6's get-next-tuple rule)."""

    def __init__(
        self, manager: ModuleManager, module_name: str, export: ExportDecl
    ) -> None:
        super().__init__(export.pred, export.arity)
        self.manager = manager
        self.module_name = module_name
        self.export = export

    def insert(self, tup: Tuple) -> bool:
        raise ModuleError(
            f"{self.name}/{self.arity} is derived by module "
            f"{self.module_name}; insert facts into base relations instead"
        )

    def delete(self, tup: Tuple) -> bool:
        raise ModuleError(f"{self.name}/{self.arity} is a derived relation")

    def __len__(self) -> int:
        return 0  # unknowable without evaluating; cursors drive evaluation

    def scan(
        self,
        pattern: Optional[Sequence[Arg]] = None,
        env: Optional[BindEnv] = None,
    ) -> TupleIterator:
        self.manager.ctx.stats.module_calls += 1
        obs = self.manager.ctx.obs
        if obs is not None:
            obs.event(
                "module.call",
                cat="module",
                module=self.module_name,
                pred=f"{self.name}/{self.arity}",
            )
        if pattern is None:
            resolved: List[Arg] = [  # an open scan: all-free call
                *(resolve(v, None) for v in _fresh_vars(self.arity))
            ]
        else:
            resolved = [resolve(arg, env) for arg in pattern]
        bound = [arg.is_ground() for arg in resolved]

        pipelined = self.manager.pipelined(self.module_name)
        if pipelined is not None:
            return pipelined.answers(self.name, resolved, None)

        memo = self.manager.ctx.memo
        if memo is not None:
            served = memo.lookup(self.module_name, self.export, resolved, bound)
            if served is not None:
                return served

        form = self.manager.choose_form(self.export, bound)
        instance = self.manager.instance_for(self.module_name, self.name, form)
        return instance.call(resolved)


def _fresh_vars(count: int):
    from ..terms import Var

    return [Var("_") for _ in range(count)]


class MaterializedInstance:
    """One (possibly retained) evaluation of a compiled query form.

    By default all relations computed here are discarded when the instance
    goes away at the end of the call (Section 5.4.2); under ``@save_module``
    the manager keeps the instance, later calls seed additional magic facts,
    and the semi-naive fixpoint resumes — the marks mechanism guarantees
    derivations are not repeated across calls.
    """

    def __init__(self, ctx: EvalContext, compiled: CompiledForm) -> None:
        self.ctx = ctx
        self.compiled = compiled
        self.scope = LocalScope(ctx, multiset_preds=set(compiled.multiset_preds))
        self._active = False
        self._calls = 0

        # declare every local predicate up front and attach indexes
        for plan in compiled.scc_plans:
            for pred in plan.preds:
                self.scope.declare_local(pred[0], pred[1])
        answer_key = (compiled.rewritten.answer_pred, compiled.rewritten.answer_arity)
        self.scope.declare_local(*answer_key)
        if compiled.rewritten.magic_pred is not None:
            self.scope.declare_local(
                compiled.rewritten.magic_pred,
                len(compiled.rewritten.bound_positions),
            )
        for (name, arity), specs in compiled.index_specs.items():
            relation = self.scope.declare_local(name, arity)
            for spec in specs:
                relation.add_index(spec)
        for (name, arity), specs in compiled.base_index_specs.items():
            if self.scope.is_local(name, arity):
                continue
            relation = ctx.resolve(name, arity)
            if isinstance(relation, HashRelation):
                for spec in specs:
                    relation.add_index(spec)
        for (name, arity), selection in compiled.constraints:
            self.scope.add_constraint(name, arity, AggregateConstraint(selection))

        if compiled.ordered_search:
            self.evaluators: List = []
            self._ordered = OrderedSearchEvaluator(self.scope, compiled)
        else:
            self._ordered = None
            if compiled.compiled == "push":
                from ..compilemod import (
                    PushCompiler,
                    PushSCCEvaluator,
                    module_level_push_fallback,
                )
                from ..compilemod.codegen import note_fallback

                self.compiler = PushCompiler()
                reason = module_level_push_fallback(compiled)
                if reason is None:
                    self.evaluators = [
                        PushSCCEvaluator(
                            self.scope,
                            plan,
                            strategy=compiled.strategy,
                            use_backjumping=compiled.use_backjumping,
                            compiler=self.compiler,
                        )
                        for plan in compiled.scc_plans
                    ]
                else:
                    # module-level fallback: the whole module runs
                    # interpreted, but the reason stays visible in the stats
                    total = sum(len(plan.rules) for plan in compiled.scc_plans)
                    self.compiler.stats.record_fallback(reason, max(total, 1))
                    note_fallback(
                        ctx.obs, f"module {compiled.module_name}", reason, "push"
                    )
                    self.evaluators = [
                        SCCEvaluator(
                            self.scope,
                            plan,
                            strategy=compiled.strategy,
                            use_backjumping=compiled.use_backjumping,
                        )
                        for plan in compiled.scc_plans
                    ]
            elif compiled.compiled:
                from ..compilemod import CompiledSCCEvaluator, RuleCompiler

                self.compiler = RuleCompiler()
                self.evaluators = [
                    CompiledSCCEvaluator(
                        self.scope,
                        plan,
                        strategy=compiled.strategy,
                        use_backjumping=compiled.use_backjumping,
                        compiler=self.compiler,
                    )
                    for plan in compiled.scc_plans
                ]
            else:
                self.compiler = None
                self.evaluators = [
                    SCCEvaluator(
                        self.scope,
                        plan,
                        strategy=compiled.strategy,
                        use_backjumping=compiled.use_backjumping,
                    )
                    for plan in compiled.scc_plans
                ]

    # -- the call protocol ----------------------------------------------------------

    def call(self, call_args: Sequence[Arg]) -> TupleIterator:
        """Answer the subquery ``pred(call_args)``: seed, evaluate, stream."""
        if self._active:
            raise ModuleError(
                f"module {self.compiled.module_name} (save_module) was "
                f"invoked recursively; the paper's restriction (Section "
                f"5.4.2) forbids this"
            )
        rewritten = self.compiled.rewritten
        is_resumption = self._calls > 0
        self._calls += 1

        if rewritten.magic_pred is not None:
            seed = Tuple(
                tuple(call_args[position] for position in rewritten.bound_positions)
            )
            self.ctx.stats.subgoals += 1
            self.scope.insert_fact(
                rewritten.magic_pred, len(seed.args), seed
            )
        if is_resumption:
            self._reset_aggregate_sccs()

        if self._ordered is not None:
            return self._eager_answers(
                call_args,
                lambda: self._ordered.solve_query(
                    self.compiled.rewritten.answer_pred, tuple(call_args)
                ),
            )
        if self.compiled.lazy:
            return GeneratorTupleIterator(self._lazy_answers(call_args))
        return self._eager_answers(call_args, self._run_all)

    def _run_all(self) -> None:
        for evaluator in self.evaluators:
            evaluator.run_to_completion()

    def _reset_aggregate_sccs(self) -> None:
        """On save-module resumption, grouped-aggregation strata must be
        recomputed from scratch: their old facts may be stale (a new group
        member can change a min)."""
        for index, plan in enumerate(self.compiled.scc_plans):
            if any(rule.head_aggregates for rule in plan.once_rules):
                for pred in plan.preds:
                    self.scope.local[pred].clear()
                self.evaluators[index] = SCCEvaluator(
                    self.scope,
                    plan,
                    strategy=self.compiled.strategy,
                    use_backjumping=self.compiled.use_backjumping,
                )

    def _eager_answers(self, call_args: Sequence[Arg], run) -> TupleIterator:
        self._active = True
        try:
            run()
        finally:
            self._active = False
        return self._answer_cursor(call_args, since=0)

    def _lazy_answers(self, call_args: Sequence[Arg]) -> Iterator[Tuple]:
        """Answers at the end of every fixpoint iteration (Sections 5.4.3,
        5.6): run one iteration, flush new matching answers, repeat."""
        rewritten = self.compiled.rewritten
        answer_rel = self.scope.local[
            (rewritten.answer_pred, rewritten.answer_arity)
        ]
        self._active = True
        try:
            read_mark = 0
            for evaluator in self.evaluators:
                for _count in evaluator.iterations():
                    frontier = answer_rel.mark()
                    if frontier > read_mark:
                        yield from self._answer_cursor(
                            call_args, since=read_mark, until=frontier
                        )
                        read_mark = frontier
            yield from self._answer_cursor(call_args, since=read_mark)
        finally:
            self._active = False

    def _answer_cursor(
        self,
        call_args: Sequence[Arg],
        since: int = 0,
        until: Optional[int] = None,
    ) -> TupleIterator:
        rewritten = self.compiled.rewritten
        answer_rel = self.scope.local[
            (rewritten.answer_pred, rewritten.answer_arity)
        ]
        candidates = answer_rel.scan(
            None if rewritten.answer_positions is not None else list(call_args),
            None,
            since=since,
            until=until,
        )
        if rewritten.answer_positions is None:
            return candidates
        # context factoring: splice the bound constants back around the
        # answer predicate's free-position values
        positions = rewritten.answer_positions

        def reassemble() -> Iterator[Tuple]:
            for partial in candidates:
                full: List[Arg] = list(call_args)
                for value, position in zip(partial.args, positions):
                    full[position] = value
                yield Tuple(tuple(full))

        return GeneratorTupleIterator(reassemble())
