"""The module system: loading, export resolution, inter-module calls
(paper Sections 5, 5.6)."""

from .manager import ExportedRelation, MaterializedInstance, ModuleManager

__all__ = ["ExportedRelation", "MaterializedInstance", "ModuleManager"]
