"""Lazy hash-consing of ground functor terms.

Section 3.1: *"The current implementation of CORAL uses a modified version of
hash-consing that operates in a lazy fashion.  Hash-consing assigns unique
identifiers to each (ground) functor term, such that two (ground) functor
terms unify if and only if their unique identifiers are the same.  We note
that such identifiers cannot be assigned to functor terms that contain free
variables, and these have to be handled differently."*

The table interns structural keys ``(name, child-key...)`` and hands out
monotonically increasing integer identifiers.  Identifiers are assigned only
when first demanded (typically when a term is inserted into a relation or
compared during unification), never eagerly at construction — the "lazy"
part, which keeps term construction cheap for transient terms.

Per-type orthogonality (the paper stresses each type generates identifiers
independently) falls out of :meth:`Arg.ground_key`: a functor's key is built
from its children's keys, whatever types they are, so new abstract data
types compose without any change here.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from .base import Arg
from .functor import Functor


class HashConsTable:
    """An intern table mapping structural keys to unique identifiers.

    A fresh table can be created per session for isolation; the module-level
    :data:`GLOBAL_TABLE` serves the common single-session case (CORAL is a
    single-user system, Section 2).
    """

    def __init__(self) -> None:
        self._ids: Dict[Any, int] = {}
        self._terms: Dict[int, Functor] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ids)

    def hc_id(self, term: Functor) -> int:
        """Return (assigning if needed) the unique id of a ground functor term.

        Iterative post-order over the term's functor subterms: deep terms —
        long lists in particular — are exactly the "large terms" the
        mechanism exists for, so the implementation must not be bounded by
        the host recursion limit.
        """
        if not term.is_ground():
            raise ValueError(f"cannot hash-cons non-ground term {term}")
        cached: Optional[int] = term._hc_id
        if cached is not None:
            return cached
        stack = [term]
        while stack:
            current = stack[-1]
            if current._hc_id is not None:
                stack.pop()
                continue
            pending = [
                arg
                for arg in current.args
                if isinstance(arg, Functor) and arg._hc_id is None
            ]
            if pending:
                stack.extend(pending)
                continue
            key = (current.name,) + tuple(
                arg.ground_key() for arg in current.args
            )
            with self._lock:
                ident = self._ids.get(key)
                if ident is None:
                    ident = len(self._ids) + 1
                    self._ids[key] = ident
                    self._terms[ident] = current
            object.__setattr__(current, "_hc_id", ident)
            stack.pop()
        return term._hc_id  # type: ignore[return-value]

    def term_for(self, ident: int) -> Optional[Functor]:
        """The canonical term first interned under ``ident`` (or None)."""
        return self._terms.get(ident)

    def canonical(self, term: Functor) -> Functor:
        """The canonical representative structurally equal to ``term``.

        Sharing representatives turns deep equality checks into pointer
        comparisons — the paper's structure-sharing optimization.
        """
        return self._terms[self.hc_id(term)]

    def clear(self) -> None:
        """Drop all interned terms (used between tests/benchmarks)."""
        with self._lock:
            self._ids.clear()
            self._terms.clear()


class InternTable:
    """Dense interning of ground constants for the push compiler.

    Unlike :class:`HashConsTable` (sparse ids for functor terms, shared
    process-wide), an ``InternTable`` is built per push-evaluation run and
    maps *any* ground :class:`Arg` — Int, Double, Str, Atom, or a ground
    functor term — to a small dense integer.  Generated push code then
    compares and hashes plain ints; ``args[ident]`` recovers the original
    Arg for the final flush back into relations, and ``vals[ident]`` holds
    the raw Python value for inlined comparisons/arithmetic.

    Identity follows :meth:`Arg.ground_key` — the same key relations use
    for duplicate elimination — so interning agrees exactly with the
    interpreter's set semantics: ``Int(0)`` and ``Double(0.0)`` stay
    distinct, ``Str("a")`` and ``Atom("a")`` stay distinct, ``-0.0`` and
    ``0.0`` collapse (``Double.__eq__`` does too), and a NaN equals itself
    under dict semantics (same object → same slot) although ``x == x`` is
    false — consistent with how ``HashRelation`` dedups NaN-carrying
    tuples.  Tables are single-run, single-thread: no lock, no clearing —
    the table dies with the run, so interned ids never leak across queries.
    """

    __slots__ = ("_ids", "args", "vals")

    def __init__(self) -> None:
        self._ids: Dict[Any, int] = {}
        #: ident -> original Arg (for flushing results back into relations)
        self.args: list = []
        #: ident -> raw Python value (for inlined arithmetic/comparisons)
        self.vals: list = []

    def __len__(self) -> int:
        return len(self.args)

    def intern(self, arg: Arg) -> int:
        """The dense id of a ground Arg (assigning one on first sight)."""
        key = arg.ground_key()
        ident = self._ids.get(key)
        if ident is None:
            ident = len(self.args)
            self._ids[key] = ident
            self.args.append(arg)
            self.vals.append(getattr(arg, "value", arg))
        return ident

    def intern_num(self, value) -> int:
        """Intern a computed Python number (arithmetic results in generated
        code), boxing it lazily only when first seen."""
        key = ("int", value) if isinstance(value, int) else ("dbl", value)
        ident = self._ids.get(key)
        if ident is None:
            from .base import Double, Int

            ident = len(self.args)
            self._ids[key] = ident
            self.args.append(Int(value) if isinstance(value, int) else Double(value))
            self.vals.append(value)
        return ident

    def arg_for(self, ident: int) -> Arg:
        """The canonical Arg first interned under ``ident``."""
        return self.args[ident]


#: The process-wide table used by default.
GLOBAL_TABLE = HashConsTable()


def hc_id(term: Functor, table: HashConsTable | None = None) -> int:
    """Unique identifier for a ground functor term (module-level shorthand)."""
    return (table or GLOBAL_TABLE).hc_id(term)


def canonical(term: Functor, table: HashConsTable | None = None) -> Functor:
    """Canonical shared representative of a ground functor term."""
    return (table or GLOBAL_TABLE).canonical(term)
