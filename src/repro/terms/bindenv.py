"""Binding environments and the trail.

Section 3.1: *"It is more efficient ... to record variable bindings in a
binding environment, at least during the course of an inference.  A binding
environment (often referred to as a bindenv) is a structure that stores
bindings for variables.  Therefore whenever a variable is accessed during an
inference, a corresponding binding environment must be accessed to find if
the variable has been bound."*

A binding maps a variable to a ``(term, environment)`` pair — the environment
in which *that term's own* variables are to be interpreted.  This is exactly
the structure of the paper's Figure 2, where ``Y`` is bound to ``Z`` in one
bindenv and ``Z`` to ``50`` in another: non-ground facts keep their private
environment while rule evaluation binds rule variables in the activation's
environment, with no copying.

Section 5.3: *"CORAL maintains a trail of variable bindings when a rule is
evaluated; this is used to undo variable bindings when the nested-loops join
considers the next tuple in any loop."*  :class:`Trail` implements that.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .base import Arg
from .functor import Functor
from .variable import Var


class BindEnv:
    """A table of variable bindings for one inference / fact.

    Lookup is by the variable's ``vid``.  Environments are small and
    short-lived (one per rule activation), so a plain dict is the right
    structure.
    """

    __slots__ = ("_bindings",)

    def __init__(self) -> None:
        self._bindings: Dict[int, Tuple[Arg, Optional["BindEnv"]]] = {}

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, var: Var) -> bool:
        return var.vid in self._bindings

    def lookup(self, var: Var) -> Optional[Tuple[Arg, Optional["BindEnv"]]]:
        """The ``(term, env)`` bound to ``var``, or None when unbound."""
        return self._bindings.get(var.vid)

    def bind(
        self,
        var: Var,
        term: Arg,
        env: Optional["BindEnv"],
        trail: Optional["Trail"] = None,
    ) -> None:
        """Bind ``var`` to ``term`` interpreted in ``env``.

        Records the binding on ``trail`` (when given) so a backtracking
        join can undo it.  Binding an already-bound variable is a logic
        error caught here rather than silently corrupting the env.
        """
        if var.vid in self._bindings:
            raise ValueError(f"variable {var} is already bound")
        self._bindings[var.vid] = (term, env)
        if trail is not None:
            trail.push(self, var)

    def unbind(self, var: Var) -> None:
        """Remove the binding for ``var`` (used by trail undo only)."""
        self._bindings.pop(var.vid, None)

    def clear(self) -> None:
        self._bindings.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"_{vid}={term}" for vid, (term, _) in self._bindings.items())
        return f"BindEnv({inner})"


class Trail:
    """A stack of bindings to undo on backtracking (Section 5.3)."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[Tuple[BindEnv, Var]] = []

    def mark(self) -> int:
        """The current height; pass to :meth:`undo_to` later."""
        return len(self._entries)

    def push(self, env: BindEnv, var: Var) -> None:
        self._entries.append((env, var))

    def undo_to(self, mark: int) -> None:
        """Unbind everything recorded after ``mark``."""
        while len(self._entries) > mark:
            env, var = self._entries.pop()
            env.unbind(var)

    def __len__(self) -> int:
        return len(self._entries)


def deref(term: Arg, env: Optional[BindEnv]) -> Tuple[Arg, Optional[BindEnv]]:
    """Follow variable bindings until reaching a non-variable or an unbound
    variable.  Returns the final ``(term, env)`` pair."""
    while isinstance(term, Var) and env is not None:
        bound = env.lookup(term)
        if bound is None:
            break
        term, env = bound
    return term, env


def resolve(term: Arg, env: Optional[BindEnv]) -> Arg:
    """Deeply substitute bindings into ``term``, producing a standalone term.

    Unbound variables are kept as-is.  Used when a derived fact leaves the
    inference that produced it and must no longer depend on the activation's
    bindenv (e.g. before insertion into a relation).

    Iterative (explicit rebuild stack): derived facts routinely carry deep
    list terms — accumulated paths, for one — which must not be bounded by
    the host recursion limit.
    """
    term, env = deref(term, env)
    if not (isinstance(term, Functor) and not (env is None and term.is_ground())):
        return term
    # frames: [functor, env, next-child-index, rebuilt-children]
    frames = [[term, env, 0, []]]
    result: Arg = term
    while frames:
        functor, frame_env, index, new_args = frames[-1]
        if index == len(functor.args):
            frames.pop()
            rebuilt_args = tuple(new_args)
            rebuilt = (
                functor
                if rebuilt_args == functor.args
                else Functor(functor.name, rebuilt_args)
            )
            if frames:
                frames[-1][3].append(rebuilt)
                frames[-1][2] += 1
            else:
                result = rebuilt
            continue
        child, child_env = deref(functor.args[index], frame_env)
        if isinstance(child, Functor) and not (
            child_env is None and child.is_ground()
        ):
            frames.append([child, child_env, 0, []])
        else:
            new_args.append(child)
            frames[-1][2] = index + 1
    return result


def rename_term(term: Arg, mapping: Dict[int, Var]) -> Arg:
    """Standardize apart: replace each variable with a fresh one, consistently.

    ``mapping`` carries the replacements so several terms (e.g. all the
    arguments of a stored non-ground fact) share one renaming.
    """
    if isinstance(term, Var):
        replacement = mapping.get(term.vid)
        if replacement is None:
            replacement = Var(term.name)
            mapping[term.vid] = replacement
        return replacement
    if isinstance(term, Functor) and not term.is_ground():
        return Functor(term.name, tuple(rename_term(arg, mapping) for arg in term.args))
    return term


def canonicalize_term(term: Arg, mapping: Dict[int, Var]) -> Arg:
    """Rename variables to a canonical sequence ``$0, $1, ...`` in order of
    first occurrence.

    Two terms are *variants* (equal up to variable renaming) iff their
    canonical forms are structurally equal — the basis of the duplicate
    check on non-ground facts.
    """
    if isinstance(term, Var):
        replacement = mapping.get(term.vid)
        if replacement is None:
            replacement = Var(f"${len(mapping)}", vid=-(len(mapping) + 1))
            mapping[term.vid] = replacement
        return replacement
    if isinstance(term, Functor) and not term.is_ground():
        return Functor(
            term.name, tuple(canonicalize_term(arg, mapping) for arg in term.args)
        )
    return term


def term_variables(terms: Iterable[Arg]) -> List[Var]:
    """Distinct variables across ``terms``, in first-occurrence order."""
    seen: Dict[int, Var] = {}
    for term in terms:
        for var in term.variables():
            seen.setdefault(var.vid, var)
    return list(seen.values())
