"""Variables as a primitive CORAL type.

Section 3.1: *"Variables constitute a primitive type in CORAL, since CORAL
allows facts (and not just rules) to contain variables ... The semantics of a
variable in a fact is that the variable is universally quantified in the
fact."*

A :class:`Var` is identified by a process-unique integer ``vid``; the name is
kept only for printing.  Equality is identity on ``vid`` — two variables with
the same source name in different rules are different variables once the rule
is *standardized apart* (see :func:`rename_term` in :mod:`repro.terms.bindenv`).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from .base import Arg

_next_vid = itertools.count(1)


class Var(Arg):
    """A logic variable.

    Variables never hold their binding; bindings live in a separate
    *binding environment* (Section 3.1, Figure 2), so the same variable
    object can be bound differently in concurrent rule activations.
    """

    __slots__ = ("name", "vid")
    kind = "var"

    def __init__(self, name: str = "_", vid: int | None = None) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "vid", next(_next_vid) if vid is None else vid)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Var is immutable")

    # -- Arg contract -------------------------------------------------------

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Var"]:
        yield self

    def ground_key(self) -> Any:
        raise ValueError(f"ground_key() on non-ground term {self}")

    def equals(self, other: Arg) -> bool:
        return self is other or (isinstance(other, Var) and other.vid == self.vid)

    def __eq__(self, other: object) -> bool:
        return self is other or (isinstance(other, Var) and other.vid == self.vid)

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("var", self.vid))

    def __repr__(self) -> str:
        return f"Var({self.name!r}, vid={self.vid})"

    def __str__(self) -> str:
        return self.name if self.name != "_" else f"_G{self.vid}"


def fresh(name: str = "_") -> Var:
    """Create a brand-new variable, guaranteed distinct from all others."""
    return Var(name)


def is_anonymous(var: Var) -> bool:
    """True for the ``_`` don't-care variable."""
    return var.name == "_"
