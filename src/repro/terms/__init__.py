"""Term representation: the CORAL data manager's type layer (paper Section 3).

Public surface:

* :class:`Arg` and the primitive constants (:class:`Int`, :class:`BigNum`,
  :class:`Double`, :class:`Str`, :class:`Atom`);
* :class:`Var` — variables as a primitive type, enabling non-ground facts;
* :class:`Functor` plus list helpers (``cons``/``make_list``/``NIL``);
* hash-consing (:func:`hc_id`, :class:`HashConsTable`);
* binding environments (:class:`BindEnv`, :class:`Trail`, :func:`deref`,
  :func:`resolve`);
* unification and matching (:func:`unify`, :func:`match`, :func:`subsumes`,
  :func:`variant`).
"""

from .base import Arg, Atom, BigNum, Double, Int, Str, from_arg, to_arg
from .bindenv import (
    BindEnv,
    Trail,
    canonicalize_term,
    deref,
    rename_term,
    resolve,
    term_variables,
)
from .functor import (
    CONS,
    NIL,
    Functor,
    cons,
    is_cons,
    is_nil,
    list_elements,
    make_list,
)
from .hashcons import GLOBAL_TABLE, HashConsTable, canonical, hc_id
from .unify import match, subsumes, unify, variant
from .variable import Var, fresh, is_anonymous

__all__ = [
    "Arg",
    "Atom",
    "BigNum",
    "BindEnv",
    "CONS",
    "Double",
    "Functor",
    "GLOBAL_TABLE",
    "HashConsTable",
    "Int",
    "NIL",
    "Str",
    "Trail",
    "Var",
    "canonical",
    "canonicalize_term",
    "cons",
    "deref",
    "fresh",
    "from_arg",
    "hc_id",
    "is_anonymous",
    "is_cons",
    "is_nil",
    "list_elements",
    "make_list",
    "match",
    "rename_term",
    "resolve",
    "subsumes",
    "term_variables",
    "to_arg",
    "unify",
    "variant",
]
