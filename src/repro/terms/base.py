"""The ``Arg`` class hierarchy: the root of all CORAL data types.

Section 3 of the paper: *"CORAL provides the generic class Arg that is the
root of all CORAL data-types; specific types such as integers, strings, or
other abstract data-types are subclasses of Arg.  The class Arg defines a set
of virtual methods such as equals, hash, and print, which must be defined for
each abstract data-type that is created."*

This module defines :class:`Arg` and the primitive constant types the paper
lists in Section 3.1: integers, doubles, strings, and arbitrary-precision
integers (the paper used DEC's BigNum package; Python integers are natively
arbitrary precision, so :class:`BigNum` shares the integer implementation).

Symbols (unquoted lowercase identifiers such as ``john``) are represented by
:class:`Atom`; they behave as interned string constants and double as
zero-arity functor names.

Design notes
------------
* Terms are **immutable**; all subclasses use ``__slots__`` and define value
  equality and hashing, so terms can key dictionaries directly.  This is the
  foundation for the hash-based relation and index implementations.
* ``equals``/``hash_value``/``construct`` and ``__str__`` (print) form the
  abstract-data-type contract of Section 7.1; user-defined types subclass
  :class:`Arg` and the rest of the system manipulates them only through this
  interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator, Sequence


class Arg(ABC):
    """Root of the CORAL data-type hierarchy.

    Every value manipulated by the system — constants, variables, functor
    terms, and user-defined abstract data types — is an :class:`Arg`.
    System code touches values only through this interface, which is what
    makes the type system extensible (Section 7.1): defining a new type
    requires no change to the evaluator.
    """

    __slots__ = ()

    #: short tag used by the serializer and pattern indexes
    kind: str = "arg"

    # -- the virtual-method contract (Section 7.1) -------------------------

    def equals(self, other: "Arg") -> bool:
        """Structural equality.  Mirrors the paper's ``equals`` virtual."""
        return self == other

    def hash_value(self) -> int:
        """Hash consistent with :meth:`equals` (the paper's ``hash``)."""
        return hash(self)

    @classmethod
    def construct(cls, *parts: Any) -> "Arg":
        """Re-create an instance from its printed parts (the paper's
        ``construct``, used to rebuild objects from text files)."""
        return cls(*parts)  # type: ignore[call-arg]

    # -- term structure -----------------------------------------------------

    def is_ground(self) -> bool:
        """True when the term contains no free variables."""
        return True

    def variables(self) -> Iterator["Arg"]:
        """Yield each free variable occurrence (with repetition)."""
        return iter(())

    def subterms(self) -> Iterator["Arg"]:
        """Yield ``self`` and every nested subterm, pre-order."""
        yield self

    def ground_key(self) -> Any:
        """A hashable key identifying this term up to :meth:`equals`.

        For ground terms only.  Primitive constants key on ``(tag, value)``;
        functor terms key on their hash-consed identifier (Section 3.1).
        """
        return self

    def functor_arity(self) -> int:
        """Arity when viewed as a functor term; 0 for constants."""
        return 0


class _Primitive(Arg):
    """Shared implementation for the primitive constant types."""

    __slots__ = ("value",)
    kind = "prim"

    def __init__(self, value: Any) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        # Compare by kind, not concrete class, so BigNum == Int holds for
        # equal values (both are integers; BigNum only marks the source type).
        return (
            isinstance(other, _Primitive)
            and other.kind == self.kind
            and other.value == self.value
        )

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((self.kind, self.value))

    def ground_key(self) -> Any:
        return (self.kind, self.value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


class Int(_Primitive):
    """A machine integer constant."""

    __slots__ = ()
    kind = "int"

    def __init__(self, value: int) -> None:
        super().__init__(int(value))


class BigNum(Int):
    """An arbitrary-precision integer.

    The paper supported these through DEC France's BigNum package; Python
    integers are arbitrary precision already, so this subclass exists to
    preserve the type distinction (``bignum(N)`` in source text) while
    sharing all behaviour with :class:`Int`.
    """

    __slots__ = ()
    kind = "int"  # compares equal to Int of the same value


class Double(_Primitive):
    """A double-precision floating point constant."""

    __slots__ = ()
    kind = "dbl"

    def __init__(self, value: float) -> None:
        super().__init__(float(value))


class Str(_Primitive):
    """A quoted string constant."""

    __slots__ = ()
    kind = "str"

    def __init__(self, value: str) -> None:
        super().__init__(str(value))

    def __str__(self) -> str:
        return f'"{self.value}"'


class Atom(_Primitive):
    """A symbolic constant (an unquoted lowercase identifier).

    Atoms are distinct from strings: ``john`` and ``"john"`` do not unify.
    An atom is also what a zero-arity functor term collapses to.
    """

    __slots__ = ()
    kind = "atom"

    def __init__(self, name: str) -> None:
        super().__init__(str(name))

    @property
    def name(self) -> str:
        return self.value

    def __str__(self) -> str:
        return self.value


#: Values acceptable wherever a term is expected from host-language (Python)
#: code; :func:`to_arg` lifts them.
PyValue = Any


def to_arg(value: PyValue) -> Arg:
    """Lift a Python value into the :class:`Arg` hierarchy.

    Used throughout the imperative API (Section 6) so host code can pass
    plain ints, floats, strings, lists and tuples.  Strings become atoms
    when they look like identifiers and quoted strings otherwise — matching
    how the parser reads the same text.
    """
    from .functor import Functor, make_list  # local import to avoid a cycle

    if isinstance(value, Arg):
        return value
    if isinstance(value, bool):  # bool before int: True is an int in Python
        return Atom("true" if value else "false")
    if isinstance(value, int):
        return Int(value)
    if isinstance(value, float):
        return Double(value)
    if isinstance(value, str):
        if value.isidentifier() and value[:1].islower():
            return Atom(value)
        return Str(value)
    if isinstance(value, (list, tuple)):
        return make_list([to_arg(item) for item in value])
    raise TypeError(f"cannot convert {value!r} to a CORAL term")


def from_arg(term: Arg) -> PyValue:
    """Lower a ground term back to a plain Python value where possible.

    Functor terms that are proper lists become Python lists; other functor
    terms and variables are returned unchanged (host code can still inspect
    them through the Arg interface).
    """
    from .functor import Functor, list_elements

    if isinstance(term, (Int, Double, Str)):
        return term.value
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Functor):
        elements = list_elements(term)
        if elements is not None:
            return [from_arg(item) for item in elements]
    return term
