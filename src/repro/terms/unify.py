"""Unification, one-way matching, and subsumption.

Section 3.1: *"The evaluation of rules in CORAL is based on the operation of
unification that generates bindings for variables based on patterns in the
rules and the data."*

Three operations, all trail-recording so the nested-loops join can undo
bindings between loop iterations (Section 5.3):

* :func:`unify` — full two-way unification across two binding environments.
  Ground functor terms short-circuit through their hash-consed identifiers
  (Section 3.1), making unification of large shared structures O(1).
* :func:`match` — one-way matching: only variables of the *pattern* side may
  be bound.  This is what index probes and subsumption need.
* :func:`subsumes` — does a stored (possibly non-ground) fact make a new
  fact redundant?  Used by the default duplicate/subsumption checks on
  relations (Section 4.2).

Occurs-check is off by default, as in Prolog and the original CORAL; pass
``occurs_check=True`` where rational trees must be rejected.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import Arg
from .bindenv import BindEnv, Trail, deref
from .functor import Functor
from .hashcons import hc_id
from .variable import Var


def _occurs(var: Var, term: Arg, env: Optional[BindEnv]) -> bool:
    term, env = deref(term, env)
    if isinstance(term, Var):
        return term.vid == var.vid
    if isinstance(term, Functor):
        return any(_occurs(var, arg, env) for arg in term.args)
    return False


def unify(
    left: Arg,
    left_env: Optional[BindEnv],
    right: Arg,
    right_env: Optional[BindEnv],
    trail: Trail,
    occurs_check: bool = False,
) -> bool:
    """Unify two terms, each interpreted in its own binding environment.

    On success the environments are extended (bindings recorded on
    ``trail``); on failure the caller is responsible for undoing the trail
    to its pre-call mark — partial bindings are left in place, exactly as
    the backtracking join expects.

    Iterative (explicit worklist): deep terms such as long lists must not be
    limited by the host language's recursion depth.
    """
    stack = [(left, left_env, right, right_env)]
    while stack:
        left, left_env, right, right_env = stack.pop()
        left, left_env = deref(left, left_env)
        right, right_env = deref(right, right_env)

        if isinstance(left, Var):
            if (
                isinstance(right, Var)
                and right.vid == left.vid
                and right_env is left_env
            ):
                continue
            if occurs_check and _occurs(left, right, right_env):
                return False
            if left_env is None:
                raise ValueError(f"unbound variable {left} has no environment")
            left_env.bind(left, right, right_env, trail)
            continue
        if isinstance(right, Var):
            if occurs_check and _occurs(right, left, left_env):
                return False
            if right_env is None:
                raise ValueError(f"unbound variable {right} has no environment")
            right_env.bind(right, left, left_env, trail)
            continue

        if isinstance(left, Functor):
            if not isinstance(right, Functor):
                return False
            if left.name != right.name or len(left.args) != len(right.args):
                return False
            # Hash-consing fast path: two ground functor terms unify iff
            # their unique identifiers are the same (Section 3.1).
            if left.is_ground() and right.is_ground():
                if hc_id(left) != hc_id(right):
                    return False
                continue
            for la, ra in zip(reversed(left.args), reversed(right.args)):
                stack.append((la, left_env, ra, right_env))
            continue

        if isinstance(right, Functor):
            return False
        if not left.equals(right):
            return False
    return True


def match(
    pattern: Arg,
    pattern_env: Optional[BindEnv],
    instance: Arg,
    instance_env: Optional[BindEnv],
    trail: Trail,
) -> bool:
    """One-way matching: bind only the pattern's variables.

    Succeeds iff some substitution of the pattern's variables makes the two
    sides equal, leaving the instance untouched.  The instance side may
    itself contain variables — they match only an identical variable on the
    pattern side (no binding), which is the semantics subsumption needs.
    Iterative, like :func:`unify`.
    """
    stack = [(pattern, pattern_env, instance, instance_env)]
    while stack:
        pattern, pattern_env, instance, instance_env = stack.pop()
        pattern, pattern_env = deref(pattern, pattern_env)
        instance, instance_env = deref(instance, instance_env)

        if isinstance(pattern, Var):
            if pattern_env is None:
                raise ValueError(
                    f"unbound variable {pattern} has no environment"
                )
            pattern_env.bind(pattern, instance, instance_env, trail)
            continue
        if isinstance(instance, Var):
            return False

        if isinstance(pattern, Functor):
            if not isinstance(instance, Functor):
                return False
            if (
                pattern.name != instance.name
                or len(pattern.args) != len(instance.args)
            ):
                return False
            if pattern.is_ground() and instance.is_ground():
                if hc_id(pattern) != hc_id(instance):
                    return False
                continue
            for pa, ia in zip(reversed(pattern.args), reversed(instance.args)):
                stack.append((pa, pattern_env, ia, instance_env))
            continue

        if isinstance(instance, Functor):
            return False
        if not pattern.equals(instance):
            return False
    return True


def _consistent_match(
    pattern: Arg,
    pattern_env: BindEnv,
    instance: Arg,
    trail: Trail,
) -> bool:
    """Matching for subsumption: repeated pattern variables must map to
    structurally *identical* instance subterms (the instance's variables are
    treated as constants, so no binding may happen on the instance side)."""
    if isinstance(pattern, Var):
        bound = pattern_env.lookup(pattern)
        if bound is not None:
            return bound[0] == instance
        pattern_env.bind(pattern, instance, None, trail)
        return True
    if isinstance(pattern, Functor):
        if not isinstance(instance, Functor):
            return False
        if pattern.name != instance.name or len(pattern.args) != len(instance.args):
            return False
        return all(
            _consistent_match(pa, pattern_env, ia, trail)
            for pa, ia in zip(pattern.args, instance.args)
        )
    if isinstance(instance, Var):
        return False
    if isinstance(instance, Functor):
        return False
    return pattern.equals(instance)


def subsumes(general: Arg, specific: Arg) -> bool:
    """True when ``general`` θ-subsumes ``specific``.

    I.e. some substitution of ``general``'s variables yields exactly
    ``specific`` (treating ``specific``'s variables as constants).  A stored
    fact that subsumes a new fact makes the new fact redundant under the
    universal-quantification semantics of variables in facts (Section 3.1).
    Both terms are assumed standalone (no external bindenv), which is how
    facts are stored in relations.
    """
    env = BindEnv()
    trail = Trail()
    try:
        return _consistent_match(general, env, specific, trail)
    finally:
        trail.undo_to(0)


def unify_fact(
    pattern_args: "Sequence[Arg]",
    env: BindEnv,
    fact_args: "Sequence[Arg]",
    trail: Trail,
) -> bool:
    """Unify a literal's arguments against a stored fact's arguments.

    The fact gets its own fresh binding environment (non-ground facts carry
    universally quantified variables, Section 3.1 / Figure 2), so a fact
    variable can be bound for the duration of this inference without
    touching the stored fact.  On failure, partial bindings remain on the
    trail for the caller to undo — same contract as :func:`unify`.
    """
    fact_env = BindEnv()
    return all(
        unify(pattern_arg, env, fact_arg, fact_env, trail)
        for pattern_arg, fact_arg in zip(pattern_args, fact_args)
    )


def subsumes_all(general: "Sequence[Arg]", specific: "Sequence[Arg]") -> bool:
    """Tuple-level θ-subsumption: one substitution must work across *all*
    argument positions (a variable repeated in two arguments of a stored
    fact must map to the same subterm in both)."""
    if len(general) != len(specific):
        return False
    env = BindEnv()
    trail = Trail()
    try:
        return all(
            _consistent_match(g, env, s, trail) for g, s in zip(general, specific)
        )
    finally:
        trail.undo_to(0)


def variant(left: Arg, right: Arg) -> bool:
    """True when the two terms are equal up to consistent variable renaming."""
    from .bindenv import canonicalize_term

    return canonicalize_term(left, {}) == canonicalize_term(right, {})
