"""Functor terms and lists.

Section 3.1: *"Terms can be built from a function symbol, or functor, and
such terms are important for representing structured information.  For
instance, lists are a special type of functor term.  A term f(X, 10, Y) is
represented by a record containing (1) the function symbol f, (2) an array of
arguments, and (3) extra information to make unification of such terms
efficient."*

The "extra information" is the lazily assigned hash-consing identifier
(:mod:`repro.terms.hashcons`), cached in the ``_hc_id`` slot, plus the cached
groundness bit.  Lists use the conventional cons representation:
``[1,2]`` is ``'.'(1, '.'(2, []))`` with ``[]`` the :data:`NIL` atom.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from .base import Arg, Atom

#: The functor name used for list cons cells.
CONS = "."

#: The empty list.
NIL = Atom("[]")


class Functor(Arg):
    """A complex term ``name(arg1, ..., argN)``.

    Immutable; arguments are stored as a tuple.  Groundness is computed once
    at construction (cheap, and almost every term is inspected for it), while
    the hash-consing identifier is assigned *lazily* on first demand, as in
    the paper's "modified version of hash-consing that operates in a lazy
    fashion".
    """

    __slots__ = ("name", "args", "_ground", "_hash", "_hc_id")
    kind = "func"

    def __init__(self, name: str, args: Sequence[Arg]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(
            self, "_ground", all(arg.is_ground() for arg in self.args)
        )
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_hc_id", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Functor is immutable")

    # -- Arg contract -------------------------------------------------------

    def is_ground(self) -> bool:
        return self._ground

    def variables(self) -> Iterator[Arg]:
        if self._ground:
            return
        for arg in self.args:
            yield from arg.variables()

    def subterms(self) -> Iterator[Arg]:
        yield self
        for arg in self.args:
            yield from arg.subterms()

    def functor_arity(self) -> int:
        return len(self.args)

    def ground_key(self) -> Any:
        """Key on the hash-consed identifier (Section 3.1).

        Two ground functor terms unify iff their identifiers are equal, so
        the identifier is a sound and complete duplicate-detection key.
        """
        from .hashcons import hc_id  # lazy import; hashcons imports Functor

        return ("hc", hc_id(self))

    def equals(self, other: Arg) -> bool:
        return self == other

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Functor):
            return False
        if self.name != other.name or len(self.args) != len(other.args):
            return False
        if (
            self._hc_id is not None
            and other._hc_id is not None
            and self._ground
            and other._ground
        ):
            return self._hc_id == other._hc_id
        return self.args == other.args

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self.name, self.args))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return f"Functor({self.name!r}, {list(self.args)!r})"

    def __str__(self) -> str:
        elements, tail = _list_parts(self)
        if elements is not None:
            inner = ", ".join(str(item) for item in elements)
            if tail is None:
                return f"[{inner}]"
            return f"[{inner}|{tail}]"
        if self.name in ("+", "-", "*", "/") and len(self.args) == 2:
            # arithmetic prints infix so printed programs re-parse
            # (the rewritten-program listing is a consultable text file)
            return f"({self.args[0]} {self.name} {self.args[1]})"
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({inner})"


# -- list helpers -----------------------------------------------------------


def cons(head: Arg, tail: Arg) -> Functor:
    """Build one list cell ``[Head|Tail]``."""
    return Functor(CONS, (head, tail))


def make_list(items: Sequence[Arg], tail: Arg = NIL) -> Arg:
    """Build a (possibly improper) list term from a Python sequence."""
    term: Arg = tail
    for item in reversed(items):
        term = cons(item, term)
    return term


def is_cons(term: Arg) -> bool:
    """True for a non-empty list cell."""
    return isinstance(term, Functor) and term.name == CONS and len(term.args) == 2


def is_nil(term: Arg) -> bool:
    """True for the empty list."""
    return term == NIL


def _list_parts(term: Arg) -> tuple[Optional[list[Arg]], Optional[Arg]]:
    """Split a term into (elements, improper-tail).

    Returns ``(None, None)`` when the term is not list-shaped at all,
    ``(elements, None)`` for a proper list, and ``(elements, tail)`` for a
    partial list such as ``[X|Rest]``.
    """
    if not (is_cons(term) or is_nil(term)):
        return None, None
    elements: list[Arg] = []
    while is_cons(term):
        assert isinstance(term, Functor)
        elements.append(term.args[0])
        term = term.args[1]
    if is_nil(term):
        return elements, None
    return elements, term


def list_elements(term: Arg) -> Optional[list[Arg]]:
    """The elements of a *proper* list term, or None."""
    elements, tail = _list_parts(term)
    if elements is None or tail is not None:
        return None
    return elements
