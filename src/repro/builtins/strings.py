"""String and atom builtins.

Part of the utility library (the paper's acknowledgements credit "several
utilities and built-in libraries").  Strings and atoms are distinct
primitive types (Section 3.1); these predicates convert and combine them.

Modes follow the usual convention: arguments the predicate can compute are
bound on success; calling with insufficient instantiation raises
:class:`InstantiationError` rather than silently failing, since that is
almost always an evaluation-order bug.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple as PyTuple

from ..errors import EvaluationError, InstantiationError
from ..terms import Arg, Atom, BindEnv, Double, Int, Str, Trail, Var, deref, unify
from .registry import BuiltinRegistry


def _text(term: Arg, env: Optional[BindEnv]) -> Optional[str]:
    """The textual value of a bound atom/string operand, or None if the
    operand is an unbound variable."""
    term, _env = deref(term, env)
    if isinstance(term, Var):
        return None
    if isinstance(term, Str):
        return term.value
    if isinstance(term, Atom):
        return term.name
    raise EvaluationError(f"expected an atom or string, got {term}")


def _unify_one(arg: Arg, env: BindEnv, value: Arg, trail: Trail) -> Iterator[None]:
    mark = trail.mark()
    if unify(arg, env, value, None, trail):
        yield None
    else:
        trail.undo_to(mark)


def _concat_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """string_concat(A, B, C): concatenation; any single argument may be
    unbound (prefix/suffix subtraction); with A and B unbound, enumerates
    every split of C."""
    left, right, whole = (_text(a, env) for a in args)
    if left is not None and right is not None:
        yield from _unify_one(args[2], env, Str(left + right), trail)
        return
    if whole is None:
        raise InstantiationError("string_concat/3: need C or both A and B")
    if left is not None:
        if whole.startswith(left):
            yield from _unify_one(args[1], env, Str(whole[len(left):]), trail)
        return
    if right is not None:
        if whole.endswith(right):
            yield from _unify_one(
                args[0], env, Str(whole[: len(whole) - len(right)]), trail
            )
        return
    for split in range(len(whole) + 1):
        mark = trail.mark()
        if unify(args[0], env, Str(whole[:split]), None, trail) and unify(
            args[1], env, Str(whole[split:]), None, trail
        ):
            yield None
        trail.undo_to(mark)


def _length_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    text = _text(args[0], env)
    if text is None:
        raise InstantiationError("string_length/2: first argument unbound")
    yield from _unify_one(args[1], env, Int(len(text)), trail)


def _atom_string_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """atom_string(A, S): conversion in either direction."""
    atom_side, atom_env = deref(args[0], env)
    string_side, _ = deref(args[1], env)
    if isinstance(atom_side, Atom):
        yield from _unify_one(args[1], env, Str(atom_side.name), trail)
        return
    if isinstance(string_side, Str):
        yield from _unify_one(args[0], env, Atom(string_side.value), trail)
        return
    raise InstantiationError("atom_string/2: both arguments unbound")


def _case_impl(transform):
    def impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
        text = _text(args[0], env)
        if text is None:
            raise InstantiationError("case conversion: first argument unbound")
        yield from _unify_one(args[1], env, Str(transform(text)), trail)

    return impl


def _number_string_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """number_string(N, S): parse or print a number."""
    number_side, _ = deref(args[0], env)
    text = _text(args[1], env)
    if isinstance(number_side, (Int, Double)):
        printed = str(number_side.value)
        yield from _unify_one(args[1], env, Str(printed), trail)
        return
    if text is None:
        raise InstantiationError("number_string/2: both arguments unbound")
    try:
        value: Arg = Int(int(text))
    except ValueError:
        try:
            value = Double(float(text))
        except ValueError:
            return  # not a number: fail, don't error (test usage)
    yield from _unify_one(args[0], env, value, trail)


def _sub_string_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """sub_string(Whole, Sub): succeeds when Sub (bound) occurs in Whole."""
    whole = _text(args[0], env)
    sub = _text(args[1], env)
    if whole is None or sub is None:
        raise InstantiationError("sub_string/2: both arguments must be bound")
    if sub in whole:
        yield None


def install(registry: BuiltinRegistry) -> None:
    registry.register_function("string_concat", 3, _concat_impl)
    registry.register_function("string_length", 2, _length_impl)
    registry.register_function("atom_string", 2, _atom_string_impl)
    registry.register_function("string_upper", 2, _case_impl(str.upper))
    registry.register_function("string_lower", 2, _case_impl(str.lower))
    registry.register_function("number_string", 2, _number_string_impl)
    registry.register_function("sub_string", 2, _sub_string_impl)
