"""The builtin-predicate registry.

Builtins are predicates evaluated by Python code rather than by rules or
stored facts: comparisons, arithmetic binding (``C1 = C + EC`` in the
paper's Figure 3), list operations such as ``append``, and I/O.  They share
the evaluation contract of any other literal — *given the current bindings,
enumerate the ways the literal can be satisfied, extending the bindings* —
so both the materialized join loop and the pipelined resolver call them the
same way they scan a relation.

The registry is also the hook through which host-language (Python) predicate
definitions are added (Section 6.2's ``_coral_export`` mechanism — see
:mod:`repro.api.export`), and through which users register predicates over
their own abstract data types (Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple as PyTuple

from ..errors import EvaluationError
from ..terms import Arg, BindEnv, Trail

#: A builtin implementation: given (args, env, trail), yield once per
#: solution; bindings must be recorded on the trail (the caller undoes them
#: between solutions and on exhaustion).
BuiltinImpl = Callable[[Sequence[Arg], BindEnv, Trail], Iterator[None]]


@dataclass(frozen=True)
class Builtin:
    name: str
    arity: int
    impl: BuiltinImpl
    #: a pure test/generator with no side effects; the optimizer may reorder
    #: or re-evaluate it freely
    pure: bool = True

    @property
    def key(self) -> PyTuple[str, int]:
        return (self.name, self.arity)


class BuiltinRegistry:
    """Mapping (name, arity) -> :class:`Builtin`."""

    def __init__(self) -> None:
        self._builtins: Dict[PyTuple[str, int], Builtin] = {}

    def register(self, builtin: Builtin, replace: bool = False) -> None:
        if builtin.key in self._builtins and not replace:
            raise EvaluationError(
                f"builtin {builtin.name}/{builtin.arity} is already registered"
            )
        self._builtins[builtin.key] = builtin

    def register_function(
        self,
        name: str,
        arity: int,
        impl: BuiltinImpl,
        pure: bool = True,
        replace: bool = False,
    ) -> Builtin:
        builtin = Builtin(name, arity, impl, pure)
        self.register(builtin, replace=replace)
        return builtin

    def lookup(self, name: str, arity: int) -> Optional[Builtin]:
        return self._builtins.get((name, arity))

    def is_builtin(self, name: str, arity: int) -> bool:
        return (name, arity) in self._builtins

    def names(self) -> Sequence[PyTuple[str, int]]:
        return sorted(self._builtins)

    def copy(self) -> "BuiltinRegistry":
        """A shallow copy — sessions extend the default registry without
        mutating it."""
        child = BuiltinRegistry()
        child._builtins.update(self._builtins)
        return child


def default_registry() -> BuiltinRegistry:
    """A fresh registry with the standard library installed."""
    from . import core, io, lists, strings, terms_lib

    registry = BuiltinRegistry()
    core.install(registry)
    lists.install(registry)
    strings.install(registry)
    terms_lib.install(registry)
    io.install(registry)
    return registry
