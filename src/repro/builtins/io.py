"""Side-effecting builtins: ``write/1``, ``writeln/1``, ``nl/0``.

Section 5.2: pipelining *"guarantees a particular evaluation strategy, and
order of execution ... programmers can exploit this guarantee and use
predicates like updates that involve side-effects."*  These builtins are
marked impure so the optimizer never reorders or caches around them; they
are intended for pipelined modules, where evaluation order is defined.
"""

from __future__ import annotations

import sys
from typing import Iterator, Sequence, TextIO

from ..terms import Arg, BindEnv, Str, Trail, resolve
from .registry import BuiltinRegistry

#: Where write/1 sends its output; tests rebind this.
output_stream: TextIO = sys.stdout


def _display(term: Arg) -> str:
    """Strings print raw (no quotes) when written, Prolog-style."""
    if isinstance(term, Str):
        return term.value
    return str(term)


def _write_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    output_stream.write(_display(resolve(args[0], env)))
    yield None


def _writeln_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    output_stream.write(_display(resolve(args[0], env)) + "\n")
    yield None


def _nl_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    output_stream.write("\n")
    yield None


def install(registry: BuiltinRegistry) -> None:
    registry.register_function("write", 1, _write_impl, pure=False)
    registry.register_function("writeln", 1, _writeln_impl, pure=False)
    registry.register_function("nl", 0, _nl_impl, pure=False)
