"""Term-inspection builtins: ``functor/3``, ``arg/3``, ``ground/1``,
``is_list/1``, ``copy_term/2``.

These give declarative programs the same reflective access to structured
terms that the host-language API has through the Arg interface — the
"manipulate complex objects created using functors" capability the paper
leans on (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from ..errors import EvaluationError, InstantiationError
from ..terms import (
    Arg,
    Atom,
    BindEnv,
    Functor,
    Int,
    Str,
    Trail,
    Var,
    deref,
    is_cons,
    is_nil,
    rename_term,
    resolve,
    unify,
)
from .registry import BuiltinRegistry


def _unify_one(arg: Arg, env: BindEnv, value: Arg, trail: Trail) -> Iterator[None]:
    mark = trail.mark()
    if unify(arg, env, value, None, trail):
        yield None
    else:
        trail.undo_to(mark)


def _functor_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """functor(Term, Name, Arity) — decompose a bound term, or build a most
    general term from a bound name/arity."""
    term, term_env = deref(args[0], env)
    if not isinstance(term, Var):
        if isinstance(term, Functor):
            name: Arg = Atom(term.name)
            arity = len(term.args)
        elif isinstance(term, Atom):
            name, arity = term, 0
        else:
            name, arity = term, 0  # constants are their own functor
        mark = trail.mark()
        if unify(args[1], env, name, None, trail) and unify(
            args[2], env, Int(arity), None, trail
        ):
            yield None
        trail.undo_to(mark)
        return
    name_term, _ = deref(args[1], env)
    arity_term, _ = deref(args[2], env)
    if isinstance(name_term, Var) or not isinstance(arity_term, Int):
        raise InstantiationError(
            "functor/3: need a bound term, or a bound name and arity"
        )
    if arity_term.value < 0:
        raise EvaluationError("functor/3: negative arity")
    if arity_term.value == 0:
        built: Arg = name_term
    else:
        if not isinstance(name_term, Atom):
            raise EvaluationError("functor/3: functor name must be an atom")
        built = Functor(
            name_term.name, tuple(Var("_A") for _ in range(arity_term.value))
        )
    yield from _unify_one(args[0], env, built, trail)


def _arg_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """arg(N, Term, A) — the Nth (1-based) argument; enumerates N when free."""
    term, term_env = deref(args[1], env)
    if not isinstance(term, Functor):
        raise EvaluationError(f"arg/3: second argument must be a functor term")
    index_term, _ = deref(args[0], env)
    if isinstance(index_term, Int):
        position = index_term.value
        if 1 <= position <= len(term.args):
            mark = trail.mark()
            if unify(args[2], env, term.args[position - 1], term_env, trail):
                yield None
            trail.undo_to(mark)
        return
    for position, sub in enumerate(term.args, start=1):
        mark = trail.mark()
        if unify(args[0], env, Int(position), None, trail) and unify(
            args[2], env, sub, term_env, trail
        ):
            yield None
        trail.undo_to(mark)


def _ground_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    if resolve(args[0], env).is_ground():
        yield None


def _is_list_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    term = resolve(args[0], env)
    while is_cons(term):
        assert isinstance(term, Functor)
        term = term.args[1]
    if is_nil(term):
        yield None


def _copy_term_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """copy_term(T, C): C is T with fresh variables."""
    mapping: Dict[int, Var] = {}
    copy = rename_term(resolve(args[0], env), mapping)
    # the copy's fresh variables live in the caller's environment, so later
    # literals can bind them (they are unique, so no capture is possible)
    mark = trail.mark()
    if unify(args[1], env, copy, env, trail):
        yield None
    else:
        trail.undo_to(mark)


def install(registry: BuiltinRegistry) -> None:
    registry.register_function("functor", 3, _functor_impl)
    registry.register_function("arg", 3, _arg_impl)
    registry.register_function("ground", 1, _ground_impl)
    registry.register_function("is_list", 1, _is_list_impl)
    registry.register_function("copy_term", 2, _copy_term_impl)
