"""Arithmetic and comparison builtins.

``=`` follows the paper's usage (Figure 3: ``C1 = C + EC``): each side is
*arithmetically evaluated* if it is a ground arithmetic expression, then the
two sides are unified — so ``=`` serves both as assignment of a computed
value and as plain unification.  The comparison operators require ground
(evaluable) operands and fail with :class:`InstantiationError` otherwise,
which is the standard left-to-right-evaluation contract the optimizer's join
order must respect.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence, Union

from ..errors import EvaluationError, InstantiationError
from ..terms import Arg, Atom, BindEnv, Double, Functor, Int, Str, Trail, Var, deref, unify
from .registry import BuiltinRegistry

Number = Union[int, float]

#: arithmetic functors understood by :func:`eval_arith`
_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "min": min,
    "max": max,
    "pow": lambda a, b: a**b,
}
_UNARY_OPS = {
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
}


def eval_arith(term: Arg, env: Optional[BindEnv]) -> Optional[Number]:
    """Evaluate an arithmetic expression under ``env``.

    Returns a Python number, or None when the term is not an arithmetic
    expression (e.g. an atom or a non-arithmetic functor) — the caller then
    falls back to treating it as a structural term.  Raises
    :class:`InstantiationError` on an unbound variable inside an arithmetic
    operator, since that is certainly an evaluation-order bug.
    """
    term, env = deref(term, env)
    if isinstance(term, Int):
        return term.value
    if isinstance(term, Double):
        return term.value
    if isinstance(term, Functor):
        if term.name in _BINARY_OPS and len(term.args) == 2:
            left = _require(term.args[0], env, term)
            right = _require(term.args[1], env, term)
            try:
                return _BINARY_OPS[term.name](left, right)
            except ZeroDivisionError:
                raise EvaluationError(f"division by zero in {term}")
        if term.name in _UNARY_OPS and len(term.args) == 1:
            return _UNARY_OPS[term.name](_require(term.args[0], env, term))
    return None


def _require(term: Arg, env: Optional[BindEnv], context: Arg) -> Number:
    resolved, resolved_env = deref(term, env)
    if isinstance(resolved, Var):
        raise InstantiationError(
            f"unbound variable {resolved} in arithmetic expression {context}"
        )
    value = eval_arith(resolved, resolved_env)
    if value is None:
        raise EvaluationError(f"non-numeric operand {resolved} in {context}")
    return value


def number_to_arg(value: Number) -> Arg:
    return Int(value) if isinstance(value, int) else Double(value)


def _comparable(term: Arg, env: Optional[BindEnv], op: str):
    """The Python value a comparison operand denotes."""
    term, env = deref(term, env)
    if isinstance(term, Var):
        raise InstantiationError(f"unbound operand {term} of comparison {op!r}")
    value = eval_arith(term, env)
    if value is not None:
        return (0, value)  # numbers compare together (Int 1 == Double 1.0)
    if isinstance(term, Str):
        return (1, term.value)
    if isinstance(term, Atom):
        return (2, term.name)
    raise EvaluationError(f"cannot compare term {term} with {op!r}")


def _comparison(op: str, test) -> None:
    def impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
        left = _comparable(args[0], env, op)
        right = _comparable(args[1], env, op)
        if left[0] != right[0]:
            raise EvaluationError(
                f"type mismatch in comparison {op!r}: {args[0]} vs {args[1]}"
            )
        if test(left[1], right[1]):
            yield None

    impl.__name__ = f"builtin_{op}"
    return impl


def _eq_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """``X = Expr``: arithmetic evaluation then unification (Figure 3)."""
    left, right = args[0], args[1]
    left_value = _try_arith(left, env)
    right_value = _try_arith(right, env)
    left_term = number_to_arg(left_value) if left_value is not None else left
    right_term = number_to_arg(right_value) if right_value is not None else right
    mark = trail.mark()
    if unify(left_term, env, right_term, env, trail):
        yield None
    else:
        trail.undo_to(mark)


def _try_arith(term: Arg, env: Optional[BindEnv]) -> Optional[Number]:
    """Evaluate if the term is a *compound* arithmetic expression; leave
    plain constants and variables to structural unification."""
    resolved, resolved_env = deref(term, env)
    if isinstance(resolved, Functor):
        if (resolved.name in _BINARY_OPS and len(resolved.args) == 2) or (
            resolved.name in _UNARY_OPS and len(resolved.args) == 1
        ):
            return eval_arith(resolved, resolved_env)
    return None


def _struct_eq(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """``==``: equality of the (arithmetically evaluated) ground operands."""
    left = _comparable(args[0], env, "==")
    right = _comparable(args[1], env, "==")
    if left == right:
        yield None


def _struct_neq(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    left = _comparable(args[0], env, "!=")
    right = _comparable(args[1], env, "!=")
    if left != right:
        yield None


def _between_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """``between(Low, High, X)``: enumerate integers Low..High into X, or
    test membership when X is bound — the standard generator builtin."""
    low = _require(args[0], env, args[0])
    high = _require(args[1], env, args[1])
    if not (isinstance(low, int) and isinstance(high, int)):
        raise EvaluationError("between/3 bounds must be integers")
    target, target_env = deref(args[2], env)
    if not isinstance(target, Var):
        value = eval_arith(target, target_env)
        if isinstance(value, int) and low <= value <= high:
            yield None
        return
    for value in range(low, high + 1):
        mark = trail.mark()
        if unify(args[2], env, Int(value), None, trail):
            yield None
        trail.undo_to(mark)


def install(registry: BuiltinRegistry) -> None:
    registry.register_function("between", 3, _between_impl)
    registry.register_function("<", 2, _comparison("<", lambda a, b: a < b))
    registry.register_function(">", 2, _comparison(">", lambda a, b: a > b))
    registry.register_function("<=", 2, _comparison("<=", lambda a, b: a <= b))
    registry.register_function(">=", 2, _comparison(">=", lambda a, b: a >= b))
    registry.register_function("=", 2, _eq_impl)
    registry.register_function("==", 2, _struct_eq)
    registry.register_function("!=", 2, _struct_neq)
