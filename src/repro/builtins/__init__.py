"""Builtin predicates: comparisons, arithmetic, lists, I/O (Section 6.2)."""

from .core import eval_arith, number_to_arg
from .registry import Builtin, BuiltinRegistry, default_registry

__all__ = [
    "Builtin",
    "BuiltinRegistry",
    "default_registry",
    "eval_arith",
    "number_to_arg",
]
