"""List-manipulation builtins: ``append/3``, ``member/2``, ``length/2``.

``append`` is the workhorse the paper's Figure 3 uses to accumulate the edge
list of a path.  It is fully relational, Prolog-style: any argument may be
unbound, and the builtin enumerates every solution (the materialized join
uses it almost exclusively in the (bound, bound, free) mode, where it is
deterministic).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import EvaluationError
from ..terms import (
    Arg,
    BindEnv,
    Functor,
    Int,
    NIL,
    Trail,
    Var,
    cons,
    deref,
    is_cons,
    is_nil,
    unify,
)
from .registry import BuiltinRegistry


def _append_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    yield from _append(args[0], args[1], args[2], env, trail)


def _append(front: Arg, back: Arg, whole: Arg, env: BindEnv, trail: Trail) -> Iterator[None]:
    """append(Front, Back, Whole) — recursion on Front / Whole."""
    front_term, front_env = deref(front, env)

    # clause 1: append([], B, B).
    mark = trail.mark()
    if unify(front, env, NIL, None, trail) and unify(back, env, whole, env, trail):
        yield None
    trail.undo_to(mark)

    # clause 2: append([H|T], B, [H|W]) :- append(T, B, W).
    mark = trail.mark()
    head, tail, rest = Var("_H"), Var("_T"), Var("_W")
    if unify(front, env, cons(head, tail), env, trail) and unify(
        whole, env, cons(head, rest), env, trail
    ):
        yield from _append(tail, back, rest, env, trail)
    trail.undo_to(mark)


def _member_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    item = args[0]
    lst, lst_env = args[1], env
    while True:
        lst, lst_env = deref(lst, lst_env)
        if not is_cons(lst):
            return
        assert isinstance(lst, Functor)
        mark = trail.mark()
        if unify(item, env, lst.args[0], lst_env, trail):
            yield None
        trail.undo_to(mark)
        lst = lst.args[1]


def _length_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    lst, length = args[0], args[1]
    count = 0
    lst, lst_env = deref(lst, env)
    while is_cons(lst):
        assert isinstance(lst, Functor)
        count += 1
        lst, lst_env = deref(lst.args[1], lst_env)
    if is_nil(lst):
        mark = trail.mark()
        if unify(length, env, Int(count), None, trail):
            yield None
        else:
            trail.undo_to(mark)
        return
    if isinstance(lst, Var):
        # partial list: enumerate extensions when the length is known
        target, _ = deref(length, env)
        if isinstance(target, Int):
            remaining = target.value - count
            if remaining < 0:
                return
            extension: Arg = NIL
            for _ in range(remaining):
                extension = cons(Var("_E"), extension)
            mark = trail.mark()
            if unify(lst, lst_env, extension, None, trail):
                yield None
            else:
                trail.undo_to(mark)
            return
        raise EvaluationError("length/2 needs a proper list or a bound length")


def _elements(term: Arg, env: BindEnv, name: str):
    """The elements of a bound proper list, as standalone terms."""
    from ..terms import resolve, list_elements

    resolved = resolve(term, env)
    elements = list_elements(resolved)
    if elements is None:
        raise EvaluationError(f"{name}: expected a proper list, got {resolved}")
    return elements


def _unify_one(arg: Arg, env: BindEnv, value: Arg, trail: Trail) -> Iterator[None]:
    mark = trail.mark()
    if unify(arg, env, value, None, trail):
        yield None
    else:
        trail.undo_to(mark)


def _reverse_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    from ..terms import make_list

    elements = _elements(args[0], env, "reverse/2")
    yield from _unify_one(args[1], env, make_list(list(reversed(elements))), trail)


def _nth_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    """nth(N, List, Element) — 1-based; enumerates N when unbound."""
    elements = _elements(args[1], env, "nth/3")
    index_term, _ = deref(args[0], env)
    if isinstance(index_term, Int):
        position = index_term.value
        if 1 <= position <= len(elements):
            yield from _unify_one(args[2], env, elements[position - 1], trail)
        return
    for position, element in enumerate(elements, start=1):
        mark = trail.mark()
        if unify(args[0], env, Int(position), None, trail) and unify(
            args[2], env, element, None, trail
        ):
            yield None
        trail.undo_to(mark)


def _last_impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
    elements = _elements(args[0], env, "last/2")
    if elements:
        yield from _unify_one(args[1], env, elements[-1], trail)


def _numeric_fold(name: str, fold):
    from ..builtins.core import eval_arith, number_to_arg

    def impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
        elements = _elements(args[0], env, name)
        values = []
        for element in elements:
            value = eval_arith(element, None)
            if value is None:
                raise EvaluationError(f"{name}: non-numeric element {element}")
            values.append(value)
        result = fold(values)
        if result is None:
            return
        yield from _unify_one(args[1], env, number_to_arg(result), trail)

    return impl


def _sort_impl(dedup: bool):
    from ..storage.serde import sort_key
    from ..terms import make_list

    def impl(args: Sequence[Arg], env: BindEnv, trail: Trail) -> Iterator[None]:
        elements = _elements(args[0], env, "sort/msort")

        def key(element: Arg):
            try:
                return (0, sort_key([element]))
            except Exception:
                return (1, str(element))

        ordered = sorted(elements, key=key)
        if dedup:
            unique = []
            for element in ordered:
                if not unique or unique[-1] != element:
                    unique.append(element)
            ordered = unique
        yield from _unify_one(args[1], env, make_list(ordered), trail)

    return impl


def install(registry: BuiltinRegistry) -> None:
    registry.register_function("append", 3, _append_impl)
    registry.register_function("member", 2, _member_impl)
    registry.register_function("length", 2, _length_impl)
    registry.register_function("reverse", 2, _reverse_impl)
    registry.register_function("nth", 3, _nth_impl)
    registry.register_function("last", 2, _last_impl)
    registry.register_function(
        "sum_list", 2, _numeric_fold("sum_list/2", lambda v: sum(v))
    )
    registry.register_function(
        "max_list", 2, _numeric_fold("max_list/2", lambda v: max(v) if v else None)
    )
    registry.register_function(
        "min_list", 2, _numeric_fold("min_list/2", lambda v: min(v) if v else None)
    )
    registry.register_function("sort", 2, _sort_impl(dedup=True))
    registry.register_function("msort", 2, _sort_impl(dedup=False))
