"""Distributed tracing tests: wire context, head sampling, span buffers,
cross-process trace assembly, and the tagged-diagnostics integrations.

The assembly tests exercise the robustness contract stated on
:class:`repro.obs.disttrace.TraceCollector`: out-of-order arrival, clock
skew across processes (ordering comes from parent links, never from
comparing timestamps between clocks), duplicate span ids (first write
wins) and missing hops (partial traces still render and export).

The golden-schema validator lives in ``tests/trace_schema.py`` (shared
with the CI trace-smoke job, which checks a *live* cluster's assembled
trace against the same schema), so it validates structure, not span names.
"""

import json
import os
import socket
import urllib.error
import urllib.request

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import ProtocolError
from repro.obs.disttrace import (
    HeadSampler,
    SpanBuffer,
    TraceCollector,
    TraceContext,
)
from repro.obs.metrics import LabelCapper, MetricError, MetricsRegistry
from repro.server import CoralServer, PROTOCOL_VERSION
from repro.server.protocol import read_frame, write_frame
from repro.sharding import ShardRouter, WorkerPool
from repro.shell.repl import Shell

from .trace_schema import validate_chrome_trace

TC_PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4).

    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""

TRACE_A = "aa" * 16
TRACE_B = "bb" * 16


def _span(sid, parent, name, process, ts, dur=None, conn=None,
          trace=TRACE_A, **args):
    span = {
        "trace": trace,
        "id": sid,
        "parent": parent,
        "name": name,
        "process": process,
        "os_pid": 4242,
        "ts": ts,
    }
    if dur is not None:
        span["dur"] = dur
    if conn is not None:
        span["conn"] = conn
    if args:
        span["args"] = args
    return span


def _raw_client(address):
    sock = socket.create_connection(address, timeout=10.0)
    write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
    header, _ = read_frame(sock)
    assert header["ok"], header
    return sock


# ---------------------------------------------------------------------------
# trace context: the wire format
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext.mint(sampled=True)
        wire = ctx.to_wire()
        assert wire == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        back = TraceContext.from_wire(wire)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.sampled is True

    def test_unsampled_flag_roundtrip(self):
        ctx = TraceContext.mint(sampled=False)
        assert ctx.to_wire().endswith("-00")
        assert TraceContext.from_wire(ctx.to_wire()).sampled is False

    def test_mint_is_unique(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_shares_trace_and_links_parent(self):
        root = TraceContext.mint(sampled=True)
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_id == root.span_id
        assert child.sampled is True
        assert root.parent_id is None

    def test_child_inherits_unsampled(self):
        assert TraceContext.mint(sampled=False).child().sampled is False

    def test_sampled_is_mutable_for_slowlog_force(self):
        ctx = TraceContext.mint(sampled=False)
        ctx.sampled = True
        assert TraceContext.from_wire(ctx.to_wire()).sampled is True

    @pytest.mark.parametrize(
        "value",
        [
            None,
            1234,
            "",
            "not-a-trace",
            "00-abc-def-01",                              # wrong widths
            f"00-{TRACE_A}-0123456789abcdef",             # 3 parts
            f"zz-{TRACE_A}-0123456789abcdef-01",          # bad version hex
            f"00-{'g' * 32}-0123456789abcdef-01",         # bad trace hex
            f"00-{TRACE_A}-xyzxyzxyzxyzxyzx-01",          # bad span hex
            f"00-{TRACE_A}-0123456789abcdef-q1",          # bad flags hex
            f"00-{'0' * 32}-0123456789abcdef-01",         # all-zero trace id
            f"00-{TRACE_A}-{'0' * 16}-01",                # all-zero span id
        ],
    )
    def test_malformed_wire_values_parse_to_none(self, value):
        assert TraceContext.from_wire(value) is None


class TestHeadSampler:
    def test_rate_zero_never_samples(self):
        sampler = HeadSampler(0.0)
        assert not any(sampler.decide() for _ in range(100))

    def test_rate_one_always_samples(self):
        sampler = HeadSampler(1.0)
        assert all(sampler.decide() for _ in range(100))

    def test_fractional_rate_is_exact_over_a_window(self):
        sampler = HeadSampler(0.25)
        assert sum(sampler.decide() for _ in range(100)) == 25

    @pytest.mark.parametrize("rate", [-0.1, 1.5, 2])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="sample rate"):
            HeadSampler(rate)


# ---------------------------------------------------------------------------
# span buffer: bounded, drained to JSONL
# ---------------------------------------------------------------------------


class TestSpanBuffer:
    def test_records_sampled_spans_with_links(self):
        buf = SpanBuffer("worker-0")
        ctx = TraceContext.mint(sampled=True).child()
        span = buf.record(ctx, "request.QUERY", 10.0, 10.5, conn=7, rows=3)
        assert span["trace"] == ctx.trace_id
        assert span["id"] == ctx.span_id
        assert span["parent"] == ctx.parent_id
        assert span["process"] == "worker-0"
        assert span["dur"] == pytest.approx(0.5)
        assert span["conn"] == 7
        assert span["args"] == {"rows": 3}
        assert buf.recorded == 1 and len(buf) == 1

    def test_unsampled_context_records_nothing(self):
        buf = SpanBuffer("p")
        assert buf.record(TraceContext.mint(sampled=False), "x", 1.0, 2.0) is None
        assert len(buf) == 0 and buf.recorded == 0

    def test_instant_span_has_no_duration(self):
        buf = SpanBuffer("p")
        span = buf.record(TraceContext.mint(), "replica.apply", 3.0)
        assert "dur" not in span

    def test_cap_drops_and_counts(self):
        drops = []
        buf = SpanBuffer("p", limit=2, on_drop=lambda: drops.append(1))
        for _ in range(5):
            buf.record(TraceContext.mint(), "s", 1.0, 2.0)
        assert len(buf) == 2
        assert buf.dropped == 3
        assert len(drops) == 3

    def test_jsonl_drain_file(self, tmp_path):
        path = str(tmp_path / "spans" / "p.jsonl")
        buf = SpanBuffer("p", path=path)
        ctx = TraceContext.mint()
        buf.record(ctx, "a", 1.0, 2.0)
        buf.record(ctx.child(), "b", 2.0, 3.0)
        buf.close()
        buf.close()  # idempotent
        lines = [json.loads(l) for l in open(path)]
        assert [l["name"] for l in lines] == ["a", "b"]
        assert all(l["trace"] == ctx.trace_id for l in lines)

    def test_spans_for_filters_by_trace(self):
        buf = SpanBuffer("p")
        kept = TraceContext.mint()
        buf.record(kept, "keep", 1.0, 2.0)
        buf.record(TraceContext.mint(), "other", 1.0, 2.0)
        found = buf.spans_for(kept.trace_id)
        assert [s["name"] for s in found] == ["keep"]
        assert len(buf.snapshot()) == 2


# ---------------------------------------------------------------------------
# collector: the robustness contract (satellite: assembly tests)
# ---------------------------------------------------------------------------


class TestTraceCollector:
    def test_out_of_order_arrival_still_nests(self):
        # the worker's span arrives before the router's, the router's
        # before the client's: assembly must not care
        collector = TraceCollector()
        collector.add_span(_span("c" * 16, "b" * 16, "worker.eval", "worker-0", 3.0, 0.1))
        collector.add_span(_span("b" * 16, "a" * 16, "router.forward", "router", 2.0, 0.2))
        collector.add_span(_span("a" * 16, None, "client.query", "client", 1.0, 0.3))
        tree = collector.tree(TRACE_A)
        lines = tree.splitlines()
        assert lines[1].startswith("- client.query")
        assert lines[2].startswith("  - router.forward")
        assert lines[3].startswith("    - worker.eval")

    def test_clock_skew_ordering_comes_from_parent_links(self):
        # the worker's clock runs 500s *behind* the router's: its child
        # span's timestamp precedes its parent's.  Timestamp ordering would
        # invert the tree; parent-link ordering must not.
        collector = TraceCollector()
        collector.add_span(_span("a" * 16, None, "router.request", "router", 1000.0, 0.5))
        collector.add_span(_span("b" * 16, "a" * 16, "worker.eval", "worker-0", 500.0, 0.1))
        lines = collector.tree(TRACE_A).splitlines()
        assert lines[1].startswith("- router.request")
        assert lines[2].startswith("  - worker.eval")
        # same contract in the Chrome export: depth follows links
        assembled = collector.assemble(TRACE_A)
        depths = {
            e["args"]["span"]: e["args"]["depth"]
            for e in assembled["traceEvents"]
            if e["ph"] != "M"
        }
        assert depths == {"a" * 16: 0, "b" * 16: 1}

    def test_same_process_siblings_order_by_time(self):
        # within ONE process the clock is self-consistent, so sibling
        # fetches recorded there keep their true order even when added
        # backwards
        collector = TraceCollector()
        collector.add_span(_span("a" * 16, None, "root", "client", 1.0, 9.0))
        collector.add_span(_span("c" * 16, "a" * 16, "fetch.2", "client", 3.0, 0.1))
        collector.add_span(_span("b" * 16, "a" * 16, "fetch.1", "client", 2.0, 0.1))
        lines = collector.tree(TRACE_A).splitlines()
        assert lines[2].startswith("  - fetch.1")
        assert lines[3].startswith("  - fetch.2")

    def test_duplicate_span_ids_first_write_wins(self):
        collector = TraceCollector()
        first = _span("a" * 16, None, "original", "router", 1.0, 0.5)
        dupe = _span("a" * 16, None, "impostor", "router", 9.0, 0.5)
        assert collector.add_span(first)
        assert not collector.add_span(dupe)
        assert collector.duplicates == 1
        spans = collector.spans(TRACE_A)
        assert len(spans) == 1 and spans[0]["name"] == "original"
        assert collector.assemble(TRACE_A)["otherData"]["duplicate_spans"] == 1

    def test_missing_hop_renders_partial_trace(self):
        # the router hop never reported (killed mid-query): the client root
        # and the worker orphan must both still render and export
        collector = TraceCollector()
        collector.add_span(_span("a" * 16, None, "client.query", "client", 1.0, 0.5))
        collector.add_span(_span("c" * 16, "9" * 16, "worker.eval", "worker-0", 2.0, 0.1))
        tree = collector.tree(TRACE_A)
        assert "- client.query" in tree
        assert "- worker.eval [worker-0] 100.00ms (orphaned: parent hop missing)" in tree
        assembled = collector.assemble(TRACE_A)
        exported = {
            e["args"]["span"]
            for e in assembled["traceEvents"]
            if e["ph"] != "M"
        }
        assert exported == {"a" * 16, "c" * 16}
        validate_chrome_trace(assembled)

    def test_torn_jsonl_line_counts_as_malformed(self, tmp_path):
        path = tmp_path / "p.jsonl"
        good = json.dumps(_span("a" * 16, None, "ok", "p", 1.0, 0.1))
        path.write_text(good + '\n{"trace": "' + TRACE_A + '", "id": "tr\n')
        collector = TraceCollector()
        assert collector.load(str(path)) == 1
        assert collector.malformed == 1
        assert collector.assemble(TRACE_A)["otherData"]["malformed_spans"] == 1

    def test_span_without_ids_is_malformed(self):
        collector = TraceCollector()
        assert not collector.add_span({"name": "no ids"})
        assert not collector.add_span({"trace": TRACE_A, "id": 7})
        assert collector.malformed == 2

    def test_load_dir_merges_and_dedupes(self, tmp_path):
        shared = _span("a" * 16, None, "root", "router", 1.0, 0.5)
        (tmp_path / "router.jsonl").write_text(json.dumps(shared) + "\n")
        (tmp_path / "worker-0.jsonl").write_text(
            json.dumps(shared)  # workers sharing a span dir re-report it
            + "\n"
            + json.dumps(_span("b" * 16, "a" * 16, "eval", "worker-0", 2.0, 0.1))
            + "\n"
            + json.dumps(_span("e" * 16, None, "other", "worker-0", 1.0,
                               trace=TRACE_B))
            + "\n"
        )
        (tmp_path / "notes.txt").write_text("ignored\n")
        collector = TraceCollector()
        assert collector.load_dir(str(tmp_path)) == 3
        assert collector.duplicates == 1
        assert collector.trace_ids() == [TRACE_A, TRACE_B]
        assert collector.processes(TRACE_A) == ["router", "worker-0"]


class TestChromeTraceGolden:
    def _synthetic(self):
        collector = TraceCollector()
        collector.add_spans(
            [
                _span("a" * 16, None, "client.query", "client", 100.0, 0.9,
                      conn=None, query="edge(X, Y)"),
                _span("b" * 16, "a" * 16, "request.QUERY", "router", 100.1,
                      0.8, conn=3),
                _span("c" * 16, "b" * 16, "router.forward.QUERY", "router",
                      100.2, 0.3, conn=3, worker=0),
                _span("d" * 16, "b" * 16, "router.forward.QUERY", "router",
                      100.2, 0.4, conn=3, worker=1),
                _span("e" * 16, "c" * 16, "request.QUERY", "worker-0", 0.5,
                      0.2, conn=1),
                _span("f" * 16, "d" * 16, "request.QUERY", "worker-1", 999.0,
                      0.2, conn=1),
                _span("1" * 16, "a" * 16, "replica.apply", "replica", 100.4),
            ]
        )
        return collector

    def test_assembled_trace_matches_golden_schema(self):
        collector = self._synthetic()
        assembled = collector.assemble(TRACE_A)
        validate_chrome_trace(assembled)
        other = assembled["otherData"]
        assert other["trace_id"] == TRACE_A
        assert other["processes"] == [
            "client", "replica", "router", "worker-0", "worker-1",
        ]
        # rebased to the earliest timestamp across all (skewed) clocks
        spans = [e for e in assembled["traceEvents"] if e["ph"] != "M"]
        assert min(e["ts"] for e in spans) == 0.0
        # one pid lane per process, stable across processes
        pids = {e["pid"] for e in spans}
        assert len(pids) == 5

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        collector = self._synthetic()
        out = str(tmp_path / "trace.json")
        collector.write_chrome_trace(TRACE_A, out)
        with open(out) as handle:
            validate_chrome_trace(json.load(handle))


# ---------------------------------------------------------------------------
# single server end-to-end: client <-> server under one trace id
# ---------------------------------------------------------------------------


class TestServerTracing:
    def test_sampled_query_links_client_and_server_spans(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(session, port=0, process_name="server") as srv:
            with RemoteSession(
                *srv.address, trace_sample=1.0, process_name="client",
                batch_size=2,
            ) as db:
                result = db.query("path(1, X)")
                assert sorted(result.tuples()) == [(1, 2), (1, 3), (1, 4)]
                trace_id = result.trace_id
                assert trace_id and trace_id == db.last_trace_id
                spans = db.trace()
        by_id = {s["id"]: s for s in spans}
        assert all(s["trace"] == trace_id for s in spans)
        assert {s["process"] for s in spans} == {"client", "server"}
        names = sorted(s["name"] for s in spans)
        assert "client.query" in names
        assert "client.fetch" in names
        assert "request.QUERY" in names
        assert "request.FETCH" in names
        # the parent links stitch the hops: every server span's parent is a
        # client span, every client fetch's parent is the client root
        root = next(s for s in spans if s["name"] == "client.query")
        assert root["parent"] is None
        for span in spans:
            if span["process"] == "server":
                assert by_id[span["parent"]]["process"] == "client"
            elif span["name"] == "client.fetch":
                assert span["parent"] == root["id"]
        # and the collector renders it as one tree under the client root
        collector = TraceCollector()
        collector.add_spans(spans)
        tree = collector.tree(trace_id)
        assert tree.splitlines()[1].startswith("- client.query [client]")

    def test_unsampled_traffic_records_no_spans(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(session, port=0) as srv:
            with RemoteSession(*srv.address) as db:
                db.query("path(1, X)").all()
                assert db.last_trace_id is None
                with pytest.raises(ProtocolError, match="no trace id"):
                    db.trace()
                assert len(db.spans) == 0
            assert len(srv.spans) == 0

    def test_unknown_trace_id_yields_empty_span_list(self):
        with CoralServer(Session(), port=0) as srv:
            with RemoteSession(*srv.address) as db:
                assert db.trace("f" * 32) == []

    def test_malformed_wire_trace_never_fails_the_request(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(session, port=0) as srv:
            sock = _raw_client(srv.address)
            try:
                write_frame(
                    sock,
                    {"op": "QUERY", "query": "edge(X, Y)", "trace": "garbage"},
                )
                header, _ = read_frame(sock)
                assert header["ok"], header
                write_frame(
                    sock,
                    {"op": "QUERY", "query": "edge(X, Y)", "trace": 12345},
                )
                header, _ = read_frame(sock)
                assert header["ok"], header
            finally:
                sock.close()
            assert len(srv.spans) == 0  # malformed = absent, not sampled

    def test_slowlog_force_samples_and_tags_entries(self, tmp_path):
        # no client sampling at all: the tail-based escape hatch alone must
        # mint the trace, tag the slowlog entry, and record the server span
        session = Session()
        session.consult_string(TC_PROGRAM)
        slow = session.enable_slow_query_log(
            str(tmp_path / "slow.jsonl"), threshold=0.0
        )
        with CoralServer(session, port=0, process_name="server") as srv:
            with RemoteSession(*srv.address) as db:
                db.query("path(1, X)").all()
            entry = slow.last_entry
            assert entry is not None and slow.entries_written >= 1
            trace_id = entry.get("trace")
            assert isinstance(trace_id, str) and len(trace_id) == 32
            tagged = srv.spans.spans_for(trace_id)
            assert tagged, "forced-sampled request span missing"
            assert all(s["process"] == "server" for s in tagged)

    def test_span_dir_drains_for_offline_assembly(self, tmp_path):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(
            session, port=0, process_name="server",
            span_dir=str(tmp_path), trace_sample=1.0,
        ) as srv:
            sock = _raw_client(srv.address)
            try:
                write_frame(sock, {"op": "QUERY", "query": "edge(X, Y)"})
                header, _ = read_frame(sock)
                assert header["ok"]
            finally:
                sock.close()
        collector = TraceCollector()
        assert collector.load_dir(str(tmp_path)) >= 1
        # the server-side sampler roots a trace per unsolicited request
        # (HELLO, QUERY, ...); the QUERY's is the one we care about
        queried = [
            s["trace"]
            for t in collector.trace_ids()
            for s in collector.spans(t)
            if s["name"] == "request.QUERY"
        ]
        assert len(queried) == 1
        assert collector.processes(queried[0]) == ["server"]

    def test_stats_surface_trace_counters(self):
        with CoralServer(
            Session(), port=0, process_name="server", trace_sample=0.5
        ) as srv:
            with RemoteSession(*srv.address) as db:
                db.insert("edge", 1, 2)
                stats = db.stats()
        trace = stats["trace"]
        assert trace["process"] == "server"
        assert trace["sample_rate"] == 0.5
        assert trace["spans_recorded"] >= 1  # the server-side head sampler
        assert trace["spans_dropped"] == 0

    def test_debug_trace_endpoint_serves_assembled_traces(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(
            session, port=0, process_name="server", telemetry_port=0
        ) as srv:
            with RemoteSession(
                *srv.address, trace_sample=1.0, process_name="client"
            ) as db:
                db.query("path(1, X)").all()
                trace_id = db.last_trace_id
            base = srv.telemetry.url
            with urllib.request.urlopen(f"{base}/debug/trace/{trace_id}") as rsp:
                assert rsp.status == 200
                assembled = json.loads(rsp.read())
            validate_chrome_trace(assembled)
            assert assembled["otherData"]["trace_id"] == trace_id
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/debug/trace/{'f' * 32}")
            assert err.value.code == 404


# ---------------------------------------------------------------------------
# router fleet: one trace id across client, router, and every worker
# ---------------------------------------------------------------------------


class _TracedFleet:
    """Two in-process workers behind a sampling router, all named."""

    def __init__(self, count=2, shard_map=None, **router_kw):
        self.sessions = [Session() for _ in range(count)]
        self.servers = [
            CoralServer(
                session, port=0, process_name=f"worker-{index}"
            ).start()
            for index, session in enumerate(self.sessions)
        ]
        self.pool = WorkerPool(
            count,
            endpoints=[server.address for server in self.servers],
            heartbeat=0.1,
        ).start()
        self.router = ShardRouter(
            self.pool, port=0, shard_map=shard_map,
            process_name="router", **router_kw
        ).start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.router.shutdown()
        self.pool.stop()
        for server in self.servers:
            server.shutdown()
        for session in self.sessions:
            session.close()


class TestRouterTracing:
    def test_scatter_gather_spans_every_process(self):
        with _TracedFleet(2, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(
                *fleet.router.address, trace_sample=1.0, process_name="client"
            ) as db:
                for i in range(20):
                    assert db.insert("edge", i, i + 1)
                got = sorted(db.query("edge(X, Y)").tuples())
                assert got == [(i, i + 1) for i in range(20)]
                trace_id = db.last_trace_id
                spans = db.trace()
        assert spans and all(s["trace"] == trace_id for s in spans)
        processes = {s["process"] for s in spans}
        # the acceptance bar: one trace id covering >= 3 processes — the
        # client, the router, and every worker the scatter touched
        assert {"client", "router", "worker-0", "worker-1"} <= processes
        names = {s["name"] for s in spans}
        assert "client.query" in names
        assert "request.QUERY" in names
        assert "router.forward.QUERY" in names
        legs = [s for s in spans if s["name"] == "router.forward.QUERY"]
        assert {leg["args"]["worker"] for leg in legs} == {0, 1}
        # parent links survive the extra hop: worker request spans hang off
        # router forward legs, which hang off the router's request span
        by_id = {s["id"]: s for s in spans}
        for leg in legs:
            assert by_id[leg["parent"]]["process"] == "router"
        for span in spans:
            if span["process"].startswith("worker-"):
                assert by_id[span["parent"]]["process"] == "router"
        collector = TraceCollector()
        collector.add_spans(spans)
        validate_chrome_trace(collector.assemble(trace_id))

    def test_router_trace_gather_survives_unsampled_workers(self):
        # TRACE against a router with nothing recorded answers cleanly
        with _TracedFleet(2) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                assert db.trace("e" * 32) == []

    def test_router_stats_surface_trace_counters(self):
        with _TracedFleet(2, trace_sample=1.0) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.insert("edge", 1, 2)
                stats = db.stats()
        trace = stats["trace"]
        assert trace["process"] == "router"
        assert trace["sample_rate"] == 1.0
        assert trace["spans_recorded"] >= 1


# ---------------------------------------------------------------------------
# replication: a traced write ripples primary -> replica under one trace id
# ---------------------------------------------------------------------------


def _wait_until(predicate, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestReplicationTracing:
    def test_ship_stream_carries_the_writers_trace(self):
        primary = CoralServer(
            Session(), port=0, changelog=True, heartbeat=0.05,
            process_name="primary",
        ).start()
        replica = CoralServer(
            Session(), port=0, role="replica",
            replicate_from=primary.address, replica_name="r1",
            heartbeat=0.05, process_name="replica",
        ).start()
        try:
            with RemoteSession(
                *primary.address, trace_sample=1.0, process_name="client"
            ) as db:
                assert db.insert("edge", 1, 2)
                trace_id = db.last_trace_id
            assert trace_id is not None
            assert _wait_until(
                lambda: replica.changelog.last_seq
                == primary.changelog.last_seq
            )
            assert _wait_until(
                lambda: bool(replica.spans.spans_for(trace_id))
            ), "replica recorded no span for the writer's trace"
            (applied,) = replica.spans.spans_for(trace_id)
            assert applied["name"] == "replica.apply"
            assert applied["process"] == "replica"
            # the apply hangs off the primary's request span by parent link
            request = [
                s
                for s in primary.spans.spans_for(trace_id)
                if s["name"] == "request.INSERT"
            ]
            assert request and applied["parent"] is not None
            collector = TraceCollector()
            collector.add_spans(primary.spans.spans_for(trace_id))
            collector.add_spans(replica.spans.spans_for(trace_id))
            assert set(collector.processes(trace_id)) >= {
                "primary", "replica",
            }
        finally:
            replica.shutdown()
            primary.shutdown()


# ---------------------------------------------------------------------------
# tagged diagnostics: capped label families, drop counters, @top rendering
# ---------------------------------------------------------------------------


class TestLabelCapper:
    def test_first_k_admitted_rest_collapse_to_other(self):
        capper = LabelCapper(
            MetricsRegistry().counter("x", "", ("who",)), k=2
        )
        capper.inc(1, "a")
        capper.inc(1, "b")
        capper.inc(1, "c")
        capper.inc(2, "a")
        capper.inc(1, "d")
        assert capper.counter.collect() == {
            ("a",): 3.0, ("b",): 1.0, ("other",): 2.0,
        }
        assert capper.overflowed == 2

    def test_cap_below_one_rejected(self):
        with pytest.raises(MetricError, match="label cap"):
            LabelCapper(MetricsRegistry().counter("x", ""), k=0)

    def test_server_client_label_family_is_capped(self, monkeypatch):
        import repro.server.core as core

        monkeypatch.setattr(core, "_LABEL_CAP", 1)
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(session, port=0) as srv:
            with RemoteSession(*srv.address) as db:
                db.query("edge(X, Y)").all()
                db.query("path(1, X)").all()
            preds = srv.metrics.collect()["server.query.predicates"]["values"]
        # first predicate admitted, the second collapsed into "other"
        assert set(preds) == {"edge/2", "other"}
        assert srv._m_query_preds.overflowed == 1

    def test_tracer_drops_surface_as_metric_and_stats(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(session, port=0, trace=True, trace_limit=1) as srv:
            with RemoteSession(*srv.address) as db:
                for _ in range(3):
                    db.query("edge(X, Y)").all()
        # read after shutdown: no handler threads left to race the counters
        assert srv.tracer.dropped > 0
        dropped = srv.metrics.collect()["obs.trace.dropped"]["values"]
        assert dropped.get("events") == srv.tracer.dropped
        assert srv.stats()["trace"]["events_dropped"] == srv.tracer.dropped

    def test_span_buffer_drops_surface_as_metric(self):
        with CoralServer(
            Session(), port=0, trace_sample=1.0, span_limit=1
        ) as srv:
            with RemoteSession(*srv.address) as db:
                db.insert("edge", 1, 2)
                db.insert("edge", 2, 3)
                db.insert("edge", 3, 4)
        assert srv.spans.dropped > 0
        dropped = srv.metrics.collect()["obs.trace.dropped"]["values"]
        assert dropped.get("spans") == srv.spans.dropped


class TestShellRendering:
    def test_top_shows_trace_row(self):
        stats = {
            "connections": {},
            "cursors": {},
            "trace": {
                "process": "server",
                "sample_rate": 0.25,
                "spans_recorded": 12,
                "spans_dropped": 3,
                "events_dropped": 0,
            },
        }
        text = Shell._render_top(stats)
        assert "trace: sample 0.25" in text
        assert "spans 12" in text
        assert "dropped 3 span(s)" in text

    def test_top_without_trace_section_unchanged(self):
        assert "trace:" not in Shell._render_top(
            {"connections": {}, "cursors": {}}
        )

    def test_shell_trace_command_renders_hop_tree(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with CoralServer(session, port=0, process_name="server") as srv:
            shell = Shell()
            try:
                host, port = srv.address
                shell.execute(f"@connect {host}:{port} 1.0.")
                shell.execute("path(1, X)?")
                out = shell.execute("@trace.")
                assert out.startswith("trace ")
                assert "[server/" in out  # server spans carry the conn id
                assert "[shell]" in out
            finally:
                shell.execute("@disconnect.")
