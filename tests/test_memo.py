"""Unit tests for the cross-query answer cache (:mod:`repro.eval.memo`):
hits, subsumption serving, incremental insert refresh, DRed delete repair,
damage-threshold eviction, the LRU byte budget, module annotations, and the
server's per-cursor snapshot pinning."""

import pytest

from repro import MemoPolicy, Session
from repro.client import RemoteSession
from repro.server import CoralServer

TC = """
edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).

module tc.
export path(bf, ff).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""

DIAMOND = """
edge(1, 2). edge(1, 3). edge(2, 4). edge(3, 4). edge(4, 5).

module tc.
export path(bf, ff).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


def _memo_session(program=TC, **kwargs):
    session = Session(memo=kwargs.pop("memo", True), **kwargs)
    session.consult_string(program)
    return session


def _cold(program, *mutations):
    session = Session()
    session.consult_string(program)
    for op, pred, values in mutations:
        getattr(session, op)(pred, *values)
    return session


class TestHitsAndSubsumption:
    def test_repeated_query_is_a_hit_with_identical_answers(self):
        session = _memo_session()
        first = sorted(session.query("path(X, Y)").tuples())
        second = sorted(session.query("path(X, Y)").tuples())
        assert first == second
        stats = session.memo.snapshot()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["entries"] == 1

    def test_second_query_does_no_evaluation_work(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        before = session.stats.rule_applications
        session.query("path(X, Y)").all()
        assert session.stats.rule_applications == before

    def test_all_free_entry_serves_bound_query_by_filtering(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        bound = sorted(session.query("path(2, Y)").tuples())
        assert bound == [(2, 3), (2, 4), (2, 5)]
        stats = session.memo.snapshot()
        assert stats["subsumption_hits"] == 1
        assert stats["misses"] == 1  # no second evaluation

    def test_bound_entry_serves_more_bound_query(self):
        session = _memo_session()
        session.query("path(2, Y)").all()  # bf entry, X = 2
        assert sorted(session.query("path(2, 4)").tuples()) == [(2, 4)]
        # path(2, 4) maps to the bf form with X = 2 — the same cache key —
        # so the entry is reused (served filtered) without re-evaluating.
        stats = session.memo.snapshot()
        assert stats["hits"] + stats["subsumption_hits"] == 1
        assert stats["misses"] == 1

    def test_distinct_bound_values_are_distinct_entries(self):
        session = _memo_session()
        session.query("path(1, Y)").all()
        session.query("path(3, Y)").all()
        assert session.memo.snapshot()["entries"] == 2

    def test_memo_off_by_default(self):
        session = Session()
        session.consult_string(TC)
        session.query("path(X, Y)").all()
        assert session.memo is None


class TestInsertInvalidation:
    def test_insert_refreshes_incrementally(self):
        session = _memo_session()
        assert len(session.query("path(1, Y)").tuples()) == 4
        session.insert("edge", 5, 6)
        got = sorted(session.query("path(1, Y)").tuples())
        want = sorted(
            _cold(TC, ("insert", "edge", (5, 6))).query("path(1, Y)").tuples()
        )
        assert got == want
        stats = session.memo.snapshot()
        assert stats["insert_refreshes"] == 1
        assert stats["evictions"] == 0  # repaired in place, not rebuilt

    def test_insert_to_unrelated_predicate_does_not_invalidate(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        session.insert("unrelated", 1)
        session.query("path(X, Y)").all()
        stats = session.memo.snapshot()
        assert stats["invalidations"] == 0 and stats["hits"] == 1

    def test_new_derived_cycle_after_insert(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        session.insert("edge", 5, 1)  # closes a cycle through every node
        got = sorted(session.query("path(X, Y)").tuples())
        want = sorted(
            _cold(TC, ("insert", "edge", (5, 1))).query("path(X, Y)").tuples()
        )
        assert got == want


class TestDeleteInvalidation:
    def test_delete_runs_dred_and_matches_cold(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        session.delete("edge", 2, 3)
        got = sorted(session.query("path(X, Y)").tuples())
        want = sorted(
            _cold(TC, ("delete", "edge", (2, 3))).query("path(X, Y)").tuples()
        )
        assert got == want
        stats = session.memo.snapshot()
        assert stats["delete_refreshes"] == 1
        assert stats["dred_overdeleted"] > 0

    def test_rederivation_through_alternative_support(self):
        session = _memo_session(DIAMOND)
        session.query("path(1, Y)").all()
        session.delete("edge", 2, 4)  # path(1,4) survives via edge(3,4)
        got = sorted(session.query("path(1, Y)").tuples())
        assert got == [(1, 2), (1, 3), (1, 4), (1, 5)]
        assert session.memo.snapshot()["dred_rederived"] > 0

    def test_cyclic_support_is_not_rederived(self):
        session = _memo_session(
            """
            e(1, 2). e(2, 3). e(3, 1). e(0, 1).
            module m.
            export reach(bf).
            reach(X, Y) :- e(X, Y).
            reach(X, Y) :- reach(X, Z), e(Z, Y).
            end_module.
            """
        )
        assert sorted(session.query("reach(0, Y)").tuples()) == [
            (0, 1), (0, 2), (0, 3),
        ]
        session.delete("e", 0, 1)
        assert session.query("reach(0, Y)").tuples() == []

    def test_insert_then_delete_batch(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        session.insert("edge", 5, 6)
        session.delete("edge", 3, 4)
        session.insert("edge", 3, 6)
        got = sorted(session.query("path(X, Y)").tuples())
        want = sorted(
            _cold(
                TC,
                ("insert", "edge", (5, 6)),
                ("delete", "edge", (3, 4)),
                ("insert", "edge", (3, 6)),
            ).query("path(X, Y)").tuples()
        )
        assert got == want

    def test_damage_threshold_evicts_instead_of_repairing(self):
        policy = MemoPolicy(damage_threshold=0.0)
        session = _memo_session(memo=policy)
        session.query("path(X, Y)").all()
        session.delete("edge", 1, 2)
        got = sorted(session.query("path(X, Y)").tuples())
        want = sorted(
            _cold(TC, ("delete", "edge", (1, 2))).query("path(X, Y)").tuples()
        )
        assert got == want


class TestUnmaintainableEntries:
    NEGATION = """
    e(1, 2). e(2, 3). blocked(2).

    module m.
    export ok(ff).
    ok(X, Y) :- e(X, Y), not blocked(X).
    end_module.
    """

    def test_negation_entry_is_evicted_on_update_but_stays_correct(self):
        session = _memo_session(self.NEGATION)
        assert sorted(session.query("ok(X, Y)").tuples()) == [(1, 2)]
        session.insert("blocked", 1)
        assert session.query("ok(X, Y)").tuples() == []
        session.delete("blocked", 2)
        assert sorted(session.query("ok(X, Y)").tuples()) == [(2, 3)]
        assert session.memo.snapshot()["evictions"] >= 2

    def test_aggregates_are_correct_after_update(self):
        program = """
        item(a, 3). item(a, 5). item(b, 9).
        module agg.
        export best(ff).
        best(G, max(<V>)) :- item(G, V).
        end_module.
        """
        session = _memo_session(program)
        assert sorted(session.query("best(G, V)").tuples()) == [
            ("a", 5), ("b", 9),
        ]
        session.insert("item", "a", 8)
        assert sorted(session.query("best(G, V)").tuples()) == [
            ("a", 8), ("b", 9),
        ]


class TestPoliciesAndAnnotations:
    def test_no_memo_annotation_disables_caching(self):
        session = _memo_session(TC.replace("module tc.", "module tc.\n@no_memo."))
        session.query("path(X, Y)").all()
        session.query("path(X, Y)").all()
        assert session.memo.snapshot()["entries"] == 0

    def test_annotated_policy_requires_memo_flag(self):
        session = _memo_session(memo="annotated")
        session.query("path(X, Y)").all()
        assert session.memo.snapshot()["entries"] == 0

        opted_in = _memo_session(
            TC.replace("module tc.", "module tc.\n@memo."), memo="annotated"
        )
        opted_in.query("path(X, Y)").all()
        assert opted_in.memo.snapshot()["entries"] == 1

    def test_byte_budget_evicts_least_recently_used(self):
        session = _memo_session(memo=MemoPolicy(max_bytes=1, max_entry_bytes=10**9))
        session.query("path(1, Y)").all()
        session.query("path(2, Y)").all()
        stats = session.memo.snapshot()
        assert stats["entries"] <= 1
        assert stats["evictions"] >= 1
        # evicted entries recompute correctly
        assert sorted(session.query("path(1, Y)").tuples()) == [
            (1, 2), (1, 3), (1, 4), (1, 5),
        ]

    def test_save_module_is_never_memoized(self):
        session = _memo_session(
            TC.replace("module tc.", "module tc.\n@save_module.")
        )
        session.query("path(1, Y)").all()
        assert session.memo.snapshot()["entries"] == 0

    def test_module_load_clears_cache(self):
        session = _memo_session()
        session.query("path(X, Y)").all()
        assert session.memo.snapshot()["entries"] == 1
        session.consult_string(
            "module other.\nexport q(f).\nq(1).\nend_module.\n"
        )
        assert session.memo.snapshot()["entries"] == 0


class TestObservability:
    def test_profile_carries_memo_counters(self):
        session = _memo_session()
        with session.profile() as prof:
            session.query("path(X, Y)").all()
            session.query("path(X, Y)").all()
        memo = prof.profile.memo
        assert memo is not None
        assert memo["misses"] == 1 and memo["hits"] == 1
        assert memo["entries"] == 1 and memo["bytes"] > 0
        assert prof.profile.to_dict()["memo"]["hits"] == 1
        registry = prof.profile.registry
        assert "memo.events" in registry
        assert "memo.entries" in registry and "memo.bytes" in registry

    def test_trace_has_memo_instants(self):
        session = _memo_session()
        with session.profile() as prof:
            session.query("path(X, Y)").all()
            session.query("path(X, Y)").all()
        names = {
            event["name"]
            for event in prof.profile.chrome_trace()["traceEvents"]
        }
        assert "memo.miss" in names and "memo.hit" in names


class TestServerIntegration:
    def test_stats_op_reports_memo_counters(self):
        session = Session(memo=True)
        session.consult_string(TC)
        with CoralServer(session, port=0) as server:
            with RemoteSession(*server.address) as db:
                db.query("path(X, Y)").all()
                db.query("path(X, Y)").all()
                stats = db.stats()
        assert stats["memo"]["hits"] >= 1
        assert stats["memo"]["entries"] == 1

    def test_cursor_pins_snapshot_across_concurrent_invalidation(self):
        """A streaming FETCH must never observe an invalidation mid-cursor:
        the cursor drains the answer snapshot it started on, while a fresh
        query sees the refreshed answers."""
        session = Session(memo=True)
        session.consult_string(TC)
        with CoralServer(session, port=0) as server:
            with RemoteSession(*server.address, batch_size=2) as db:
                db.query("path(X, Y)").all()  # warm the cache
                cursor = db.query("path(X, Y)", batch_size=2)
                assert cursor.get_next() is not None
                # concurrent update invalidates + refreshes the entry
                with RemoteSession(*server.address) as writer:
                    writer.insert("edge", 5, 6)
                    fresh = sorted(writer.query("path(X, Y)").tuples())
                # .all() drains the rest, including the cached first answer
                pinned = sorted(
                    (answer["X"], answer["Y"]) for answer in cursor.all()
                )
        old = sorted(
            (x, y) for x in range(1, 6) for y in range(x + 1, 6)
        )
        new = sorted(
            (x, y) for x in range(1, 7) for y in range(x + 1, 7)
        )
        assert pinned == old  # cursor never saw the mid-stream update
        assert fresh == new  # a fresh query did
