"""Combination tests: annotation interactions the individual features'
tests don't cover (psn+save, compiled+psn, goalid+aggregation, ordered
search calling other modules, multiset+pipelining, join_ordering+magic)."""

import pytest

from repro import Session

GRAPH = "edge(1, 2). edge(2, 3). edge(3, 4). edge(2, 4)."


def tc(flags: str) -> str:
    return (
        GRAPH
        + f"""
        module tc.
        export path(bf).
        {flags}
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
        """
    )


EXPECTED = [2, 3, 4, 4]  # answers for path(1, Y) before dedup in assertion


class TestFlagCombinations:
    @pytest.mark.parametrize(
        "flags",
        [
            "@psn.\n@save_module.",
            "@compiled.\n@psn.",
            "@compiled.\n@eager_eval.",
            "@magic.\n@join_ordering.",
            "@supplementary_magic_goalid.\n@psn.",
            "@no_backjumping.\n@no_index_selection.\n@psn.",
            "@context_factoring.\n@eager_eval.",
        ],
        ids=lambda f: f.replace("\n", "+").replace("@", "").replace(".", ""),
    )
    def test_combinations_agree(self, flags):
        session = Session()
        session.consult_string(tc(flags))
        got = sorted(a["Y"] for a in session.query("path(1, Y)"))
        assert got == [2, 3, 4]

    def test_save_module_with_psn_across_calls(self):
        session = Session()
        session.consult_string(tc("@psn.\n@save_module."))
        assert sorted(a["Y"] for a in session.query("path(1, Y)")) == [2, 3, 4]
        assert sorted(a["Y"] for a in session.query("path(2, Y)")) == [3, 4]
        assert sorted(a["Y"] for a in session.query("path(3, Y)")) == [4]

    def test_goalid_with_aggregation(self):
        session = Session()
        session.consult_string(
            """
            e(a, b, 4). e(b, c, 1). e(a, c, 9).

            module m.
            export best(bbf).
            @supplementary_magic_goalid.
            cost(X, Y, C) :- e(X, Y, C).
            cost(X, Y, C) :- e(X, Z, C1), cost(Z, Y, C2), C = C1 + C2.
            best(X, Y, min(<C>)) :- cost(X, Y, C).
            end_module.
            """
        )
        assert [a["C"] for a in session.query("best(a, c, C)")] == [5]

    def test_ordered_search_module_calls_materialized_module(self):
        session = Session()
        session.consult_string(
            """
            move(a, b). move(b, c).
            raw(a). raw(b). raw(c).

            module nodes.
            export node(b).
            node(X) :- raw(X).
            end_module.

            module game.
            export win(b).
            @ordered_search.
            win(X) :- node(X), move(X, Y), not win(Y).
            end_module.
            """
        )
        assert len(session.query("win(b)").all()) == 1
        assert len(session.query("win(c)").all()) == 0

    def test_multiset_pipelined_module(self):
        """Pipelining already returns one answer per proof; multiset on a
        materialized consumer of a pipelined producer keeps the copies."""
        session = Session()
        session.consult_string(
            """
            pair(1, x). pair(1, y).

            module src.
            export item(f).
            @pipelining.
            item(K) :- pair(K, V).
            end_module.

            module sink.
            export copies(f).
            @multiset copies.
            copies(K) :- item(K).
            end_module.
            """
        )
        assert len(session.query("copies(K)").all()) == 2

    def test_lint_flags_do_not_break_compile(self):
        session = Session()
        session.consult_string(tc("@join_ordering.\n@no_index_selection."))
        compiled = session.modules.compiled_form("tc", "path", "bf")
        assert compiled.rewritten.technique == "supplementary_magic"
