"""A deliberately small Prometheus text-format (version 0.0.4) parser.

Used by ``tests/test_exposition.py`` and the CI telemetry-smoke job to
validate what ``/metrics`` actually serves: every sample must belong to a
declared family (``# TYPE``), histogram buckets must be cumulative, and the
``+Inf`` bucket must equal the series ``_count``.  It understands exactly
the subset the exposition module emits — HELP/TYPE comments, optional
labels with escaped values, float/int sample values — and raises
``ParseFailure`` on anything else, which is the point: a scrape that this
parser rejects would also confuse a real Prometheus server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

KINDS = ("counter", "gauge", "histogram", "summary", "untyped")

#: suffixes that attach a sample to a histogram family
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ParseFailure(Exception):
    """The text is not valid Prometheus exposition format."""


@dataclass
class Sample:
    name: str
    labels: Dict[str, str]
    value: float


@dataclass
class Family:
    name: str
    kind: str
    help: str = ""
    samples: List[Sample] = field(default_factory=list)


def _unescape(text: str, in_label: bool) -> str:
    out: List[str] = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "\\" and index + 1 < len(text):
            escaped = text[index + 1]
            if escaped == "n":
                out.append("\n")
            elif escaped == "\\":
                out.append("\\")
            elif escaped == '"' and in_label:
                out.append('"')
            else:
                out.append(ch)
                out.append(escaped)
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def _parse_labels(text: str, line: str) -> Dict[str, str]:
    """``name="value",...`` — a character scanner, because label values may
    contain escaped quotes and commas."""
    labels: Dict[str, str] = {}
    index = 0
    while index < len(text):
        eq = text.find("=", index)
        if eq < 0:
            raise ParseFailure(f"label without '=': {line!r}")
        name = text[index:eq].strip()
        if not name or not name.replace("_", "a").isalnum():
            raise ParseFailure(f"bad label name {name!r} in: {line!r}")
        if eq + 1 >= len(text) or text[eq + 1] != '"':
            raise ParseFailure(f"unquoted label value in: {line!r}")
        index = eq + 2
        value_chars: List[str] = []
        while index < len(text):
            ch = text[index]
            if ch == "\\" and index + 1 < len(text):
                value_chars.append(ch)
                value_chars.append(text[index + 1])
                index += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            index += 1
        else:
            raise ParseFailure(f"unterminated label value in: {line!r}")
        labels[name] = _unescape("".join(value_chars), in_label=True)
        index += 1  # past the closing quote
        if index < len(text):
            if text[index] != ",":
                raise ParseFailure(f"junk after label value in: {line!r}")
            index += 1
    return labels


def _family_of(sample_name: str, families: Dict[str, Family]) -> Optional[Family]:
    family = families.get(sample_name)
    if family is not None:
        return family
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = families.get(sample_name[: -len(suffix)])
            if base is not None and base.kind in ("histogram", "summary"):
                return base
    return None


def parse_text(text: str) -> Dict[str, Family]:
    """Parse an exposition document into ``{family name: Family}``.

    Every sample line must follow a ``# TYPE`` declaration for its family
    (histogram samples match via the ``_bucket``/``_sum``/``_count``
    suffixes) — an undeclared sample is a ``ParseFailure``.
    """
    families: Dict[str, Family] = {}
    pending_helps: Dict[str, str] = {}  # HELP lines seen before their TYPE
    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if kind not in KINDS:
                    raise ParseFailure(f"unknown TYPE {kind!r}: {line!r}")
                if name in families:
                    raise ParseFailure(f"duplicate TYPE for {name}")
                families[name] = Family(name=name, kind=kind)
                if name in pending_helps:
                    families[name].help = pending_helps.pop(name)
            elif len(parts) >= 3 and parts[1] == "HELP":
                help_text = _unescape(
                    parts[3] if len(parts) > 3 else "", in_label=False
                )
                if parts[2] in families:
                    families[parts[2]].help = help_text
                else:
                    pending_helps[parts[2]] = help_text
            continue
        # sample: name[{labels}] value [timestamp]
        if "{" in line:
            brace = line.index("{")
            close = line.rindex("}")
            if close < brace:
                raise ParseFailure(f"mismatched braces: {line!r}")
            name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], line)
            rest = line[close + 1 :].split()
        else:
            fields = line.split()
            if len(fields) < 2:
                raise ParseFailure(f"sample without value: {line!r}")
            name, labels, rest = fields[0], {}, fields[1:]
        if not rest:
            raise ParseFailure(f"sample without value: {line!r}")
        try:
            value = float(rest[0])
        except ValueError:
            raise ParseFailure(f"bad sample value {rest[0]!r}: {line!r}")
        family = _family_of(name, families)
        if family is None:
            raise ParseFailure(f"sample {name!r} has no # TYPE declaration")
        family.samples.append(Sample(name=name, labels=labels, value=value))
    return families


def _series_key(sample: Sample) -> Tuple[Tuple[str, str], ...]:
    return tuple(
        sorted((k, v) for k, v in sample.labels.items() if k != "le")
    )


def validate(families: Dict[str, Family]) -> None:
    """Semantic checks beyond syntax: histogram buckets are cumulative,
    the ``+Inf`` bucket exists and equals ``_count``, and counter/gauge
    values are finite numbers."""
    for family in families.values():
        if family.kind != "histogram":
            for sample in family.samples:
                if sample.value != sample.value:  # NaN
                    raise ParseFailure(f"{family.name}: NaN sample")
            continue
        buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
        counts: Dict[Tuple, float] = {}
        sums: Dict[Tuple, float] = {}
        for sample in family.samples:
            key = _series_key(sample)
            if sample.name.endswith("_bucket"):
                le_text = sample.labels.get("le")
                if le_text is None:
                    raise ParseFailure(f"{family.name}: bucket without le")
                le = float("inf") if le_text == "+Inf" else float(le_text)
                buckets.setdefault(key, []).append((le, sample.value))
            elif sample.name.endswith("_count"):
                counts[key] = sample.value
            elif sample.name.endswith("_sum"):
                sums[key] = sample.value
        for key, series in buckets.items():
            ordered = sorted(series)
            previous = 0.0
            for le, value in ordered:
                if value < previous:
                    raise ParseFailure(
                        f"{family.name}: bucket counts not cumulative"
                    )
                previous = value
            if not ordered or ordered[-1][0] != float("inf"):
                raise ParseFailure(f"{family.name}: missing +Inf bucket")
            if key not in counts:
                raise ParseFailure(f"{family.name}: missing _count")
            if key not in sums:
                raise ParseFailure(f"{family.name}: missing _sum")
            if ordered[-1][1] != counts[key]:
                raise ParseFailure(
                    f"{family.name}: +Inf bucket != _count "
                    f"({ordered[-1][1]} vs {counts[key]})"
                )


def parse_and_validate(text: str) -> Dict[str, Family]:
    families = parse_text(text)
    validate(families)
    return families
