"""Tests for the host-language interface (Section 6) and extensibility
(Section 7): coral_export, ScanDescriptor, user ADTs, function relations,
custom index specs, the explanation tool, and the shell."""

import pytest

from repro import Session, Tuple, coral_export
from repro.errors import EvaluationError, ExtensibilityError
from repro.extensibility import FunctionRelation, TypeRegistry
from repro.api import ScanDescriptor
from repro.relations import HashRelation, IndexSpec, VAR_BUCKET
from repro.shell import Shell
from repro.terms import Arg, Atom, Int


class TestCoralExport:
    def test_host_predicate_in_rules(self):
        session = Session()

        @coral_export(session.ctx.builtins, "double", 2)
        def double(x, y):
            if x is not None:
                yield (x, 2 * x)
            elif y is not None and y % 2 == 0:
                yield (y // 2, y)

        session.consult_string(
            """
            n(1). n(2). n(3).

            module m.
            export twice(f).
            twice(Y) :- n(X), double(X, Y).
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("twice(Y)")) == [2, 4, 6]

    def test_reverse_mode(self):
        session = Session()

        @coral_export(session.ctx.builtins, "halve", 2)
        def halve(x, y):
            if y is not None and y % 2 == 0:
                yield (y // 2, y)

        answers = session.ctx.builtins.lookup("halve", 2)
        assert answers is not None

        session.consult_string(
            """
            module m.
            export half_of_ten(f).
            half_of_ten(X) :- halve(X, 10).
            end_module.
            """
        )
        assert [a["X"] for a in session.query("half_of_ten(X)")] == [5]

    def test_primitive_restriction_enforced(self):
        """Section 6.2: only primitive types cross the boundary."""
        session = Session()

        @coral_export(session.ctx.builtins, "ident", 1)
        def ident(x):
            yield (x,)

        session.consult_string(
            """
            module m.
            export boom(f).
            boom(X) :- ident(f(X)).
            end_module.
            """
        )
        with pytest.raises(EvaluationError):
            session.query("boom(X)").all()

    def test_bad_arity_yield_rejected(self):
        session = Session()

        @coral_export(session.ctx.builtins, "bad", 1)
        def bad(x):
            yield (1, 2)

        session.consult_string(
            "module m. export q(f). q(X) :- bad(X). end_module."
        )
        with pytest.raises(EvaluationError):
            session.query("q(X)").all()


class TestScanDescriptor:
    def test_scan_all(self):
        session = Session()
        session.insert("emp", "john", 30)
        session.insert("emp", "mary", 40)
        with ScanDescriptor(session.relation("emp", 2)) as scan:
            rows = sorted(scan)
        assert rows == [("john", 30), ("mary", 40)]

    def test_scan_with_selection(self):
        session = Session()
        session.insert("emp", "john", 30)
        session.insert("emp", "mary", 40)
        scan = ScanDescriptor(session.relation("emp", 2), ["john", None])
        assert scan.get_next() == ("john", 30)
        assert scan.get_next() is None

    def test_selection_arity_checked(self):
        session = Session()
        session.insert("emp", "john", 30)
        with pytest.raises(EvaluationError):
            ScanDescriptor(session.relation("emp", 2), ["john"])

    def test_scan_over_derived_relation(self):
        """The same cursor works over a module's export (Section 5.6)."""
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3).

            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        derived = session.ctx.resolve("path", 2)
        scan = ScanDescriptor(derived, [1, None])
        assert sorted(scan) == [(1, 2), (1, 3)]


class Temperature(Arg):
    """A user ADT: a temperature with unit-aware equality (Section 7.1)."""

    __slots__ = ("celsius",)
    kind = "temp"

    def __init__(self, celsius: float) -> None:
        object.__setattr__(self, "celsius", float(celsius))

    def __setattr__(self, name, value):
        raise AttributeError("immutable")

    def equals(self, other) -> bool:
        return isinstance(other, Temperature) and other.celsius == self.celsius

    def __eq__(self, other):
        return self.equals(other) if isinstance(other, Arg) else NotImplemented

    def __hash__(self):
        return hash(("temp", self.celsius))

    def hash_value(self) -> int:
        return hash(self)

    def ground_key(self):
        return ("temp", self.celsius)

    @classmethod
    def construct(cls, value):
        celsius = value.value if isinstance(value, (Int,)) else value
        if isinstance(celsius, Arg):
            celsius = celsius.value
        return cls(celsius)

    def __str__(self):
        return f"celsius({self.celsius:g})"


class TestUserTypes:
    def test_registry_contract_checked(self):
        registry = TypeRegistry()

        class NotATerm:
            pass

        with pytest.raises(ExtensibilityError):
            registry.register("bad", NotATerm)

    def test_registered_type_reconstructed_from_text(self):
        session = Session()
        session.register_type("celsius", Temperature)
        session.consult_string("reading(probe1, celsius(20)).")
        answers = session.query("reading(probe1, T)").all()
        assert len(answers) == 1
        assert isinstance(answers[0].term("T"), Temperature)
        assert answers[0].term("T").celsius == 20.0

    def test_adt_equality_drives_joins(self):
        session = Session()
        session.register_type("celsius", Temperature)
        session.consult_string(
            """
            reading(a, celsius(20)).
            reading(b, celsius(20)).
            reading(c, celsius(25)).

            module m.
            export same_temp(ff).
            same_temp(X, Y) :- reading(X, T), reading(Y, T), X != Y.
            end_module.
            """
        )
        pairs = {(a["X"], a["Y"]) for a in session.query("same_temp(X, Y)")}
        assert pairs == {("a", "b"), ("b", "a")}

    def test_duplicate_registration_rejected(self):
        registry = TypeRegistry()
        registry.register("celsius", Temperature)
        with pytest.raises(ExtensibilityError):
            registry.register("celsius", Temperature)


class TestFunctionRelation:
    def test_computed_relation_in_rules(self):
        session = Session()

        def squares(n, sq):
            if n is not None:
                yield (n.value, n.value**2)
            else:
                for i in range(10):
                    yield (i, i * i)

        session.register_relation(FunctionRelation("square", 2, squares))
        session.consult_string(
            """
            module m.
            export small_square(ff).
            small_square(N, S) :- square(N, S), S < 10.
            end_module.
            """
        )
        rows = {(a["N"], a["S"]) for a in session.query("small_square(N, S)")}
        assert rows == {(0, 0), (1, 1), (2, 4), (3, 9)}

    def test_insert_rejected(self):
        relation = FunctionRelation("f", 1, lambda x: iter(()))
        with pytest.raises(ExtensibilityError):
            relation.insert(Tuple((Int(1),)))


class ModuloIndexSpec(IndexSpec):
    """A custom index: buckets integers by value mod k (Section 7.2)."""

    def __init__(self, position: int, modulus: int) -> None:
        self.position = position
        self.modulus = modulus

    def key_for_tuple(self, tup):
        arg = tup.args[self.position]
        if isinstance(arg, Int):
            return arg.value % self.modulus
        return VAR_BUCKET

    def key_for_probe(self, pattern, env):
        from repro.terms import resolve

        arg = resolve(pattern[self.position], env)
        if isinstance(arg, Int):
            return arg.value % self.modulus
        return None

    def describe(self):
        return f"mod{self.modulus}(arg{self.position})"


class TestCustomIndex:
    def test_custom_index_spec_plugs_in(self):
        relation = HashRelation("nums", 1)
        relation.add_index(ModuloIndexSpec(0, 3))
        for i in range(30):
            relation.insert(Tuple((Int(i),)))
        hits = list(relation.scan([Int(6)], None))
        assert all(t[0].value % 3 == 0 for t in hits)
        assert len(hits) == 10  # the mod-3 bucket (candidates; caller filters)


class TestExplanation:
    def test_proof_tree(self):
        session = Session()
        tracer = session.enable_tracing()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3).

            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        session.query("path(1, Y)").all()
        assert len(tracer) > 0
        derived = [f for f in (f"path_bf(1, 3)",) if tracer.derivations_of(f)]
        assert derived, "expected a recorded derivation for path_bf(1, 3)"
        tree = tracer.why("path_bf(1, 3)")
        assert "edge(2, 3)" in tree or "path_bf(2, 3)" in tree

    def test_tracing_off_by_default(self):
        session = Session()
        assert session.ctx.tracer is None

    def test_overflow_is_not_silent(self):
        """Regression: dropping derivations past the limit used to be
        invisible — a truncated trace answered ``why`` as if complete.  The
        tracer must raise its ``overflowed`` flag and say so in ``why``."""
        from repro.explain import DerivationTracer

        tracer = DerivationTracer(limit=3)
        for i in range(5):
            tracer.record("p", f"p({i})", "p(X) :- q(X).", (f"q({i})",))
        assert tracer.overflowed
        assert len(tracer) == 3
        # recorded facts warn...
        assert "overflowed" in tracer.why("p(0)")
        # ...and so do unrecorded ones, where truncation masquerades as [base]
        assert "overflowed" in tracer.why("p(4)")

    def test_no_overflow_no_warning(self):
        from repro.explain import DerivationTracer

        tracer = DerivationTracer(limit=10)
        tracer.record("p", "p(1)", "p(X) :- q(X).", ("q(1)",))
        assert not tracer.overflowed
        assert "overflowed" not in tracer.why("p(1)")

    def test_session_overflow_end_to_end(self):
        session = Session()
        tracer = session.enable_tracing(limit=2)
        session.consult_string(
            """
            edge(1, 2). edge(2, 3). edge(3, 4).

            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        session.query("path(1, Y)").all()
        assert tracer.overflowed
        assert "overflowed" in tracer.why("path_bf(1, 2)")


class TestShell:
    def test_facts_and_query(self):
        shell = Shell()
        shell.execute("parent(a, b).")
        output = shell.execute("parent(a, X)?")
        assert "X = b" in output
        assert "1 answer(s)." in output

    def test_module_and_query(self):
        shell = Shell()
        shell.execute(
            """
            edge(1, 2). edge(2, 3).
            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        output = shell.execute("?- path(1, Y).")
        assert "2 answer(s)." in output

    def test_stats_command(self):
        shell = Shell()
        output = shell.execute("@stats.")
        assert "inferences" in output

    def test_listing_command(self):
        shell = Shell()
        shell.execute(
            """
            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        output = shell.execute("@listing tc path bf.")
        assert "m_path_bf" in output

    def test_parse_error_reported_not_raised(self):
        shell = Shell()
        output = shell.execute("this is (not valid.")
        assert output.startswith("error:")

    def test_quit(self):
        shell = Shell()
        assert shell.execute("@quit.") == "bye."
        assert shell.done

    def test_input_complete_heuristic(self):
        assert Shell.input_complete("p(1).")
        assert Shell.input_complete("p(1, X)?")
        assert not Shell.input_complete("module m.")
        assert Shell.input_complete("module m. p(1). end_module.")

    def test_consult_file(self, tmp_path):
        path = tmp_path / "data.coral"
        path.write_text("fact(1). fact(2).")
        shell = Shell()
        assert "consulted" in shell.execute(f'@consult "{path}".')
        assert "2 answer(s)." in shell.execute("fact(X)?")
