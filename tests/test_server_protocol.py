"""Unit tests for the wire protocol: frame codec, the shared tuple-batch
codec (disk format == wire format), handshake rules, and per-message
behaviour against a live server."""

import socket
import struct

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import ParseError, ProtocolError, StorageError
from repro.language import parse_query
from repro.server import (
    CoralServer,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    query_variable_names,
    read_frame,
    write_frame,
)
from repro.storage.serde import (
    BATCH_MAGIC,
    CODEC_VERSION,
    decode_batch,
    encode_batch,
)
from repro.terms import Atom, Double, Int, Str

TC_PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4).

    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


@pytest.fixture
def server():
    session = Session()
    session.consult_string(TC_PROGRAM)
    with CoralServer(session, port=0) as srv:
        yield srv


class TestFrameCodec:
    def test_roundtrip(self):
        header = {"op": "QUERY", "query": "path(1, X)", "n": 3}
        body = b"\x00\x01binary"
        frame = encode_frame(header, body)
        (total,) = struct.unpack(">I", frame[:4])
        assert total == len(frame) - 4
        decoded_header, decoded_body = decode_frame(frame[4:])
        assert decoded_header == header
        assert decoded_body == body

    def test_empty_body(self):
        header, body = decode_frame(encode_frame({"op": "BYE"})[4:])
        assert header == {"op": "BYE"}
        assert body == b""

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(b"\x00")

    def test_header_length_beyond_payload_rejected(self):
        payload = struct.pack(">I", 999) + b"{}"
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(payload)

    def test_non_json_header_rejected(self):
        garbage = b"\xff\xfe\x00!"
        payload = struct.pack(">I", len(garbage)) + garbage
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_frame(payload)

    def test_non_object_header_rejected(self):
        body = b"[1, 2]"
        payload = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(payload)


class TestBatchCodec:
    def test_roundtrip_mixed_types(self):
        rows = [
            [Int(1), Atom("msn"), Str("o'hare"), Double(2.5)],
            [Int(-(2**70))],
            [],
        ]
        decoded = decode_batch(encode_batch(rows))
        assert decoded == [list(row) for row in rows]

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_magic_prefix(self):
        assert encode_batch([]).startswith(BATCH_MAGIC)

    def test_bad_magic_rejected(self):
        blob = b"XX" + encode_batch([])[2:]
        with pytest.raises(StorageError, match="bad magic"):
            decode_batch(blob)

    def test_version_mismatch_rejected(self):
        blob = bytearray(encode_batch([[Int(1)]]))
        blob[2] = CODEC_VERSION + 1
        with pytest.raises(StorageError, match="version mismatch"):
            decode_batch(bytes(blob))

    def test_truncated_batch_rejected(self):
        blob = encode_batch([[Int(1), Int(2)]])
        with pytest.raises(StorageError, match="truncated"):
            decode_batch(blob[:-3])

    def test_short_blob_rejected(self):
        with pytest.raises(StorageError, match="truncated"):
            decode_batch(b"CB")


class TestQueryVariableNames:
    def test_first_occurrence_order_and_dedup(self):
        literal = parse_query("p(Y, X, Y, _, 3)").literal
        assert query_variable_names(literal) == ["Y", "X"]

    def test_ground_query_has_no_vars(self):
        literal = parse_query("p(1, a)").literal
        assert query_variable_names(literal) == []


def _raw_conn(server):
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


class TestHandshake:
    def test_request_before_hello_refused(self, server):
        with _raw_conn(server) as sock:
            write_frame(sock, {"op": "QUERY", "query": "edge(X, Y)"})
            header, _ = read_frame(sock)
            assert header["ok"] is False
            assert header["error"] == "ProtocolError"
            assert "HELLO" in header["message"]
            # the server hangs up after refusing the handshake
            assert read_frame(sock) is None

    def test_version_mismatch_refused(self, server):
        with _raw_conn(server) as sock:
            write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION + 1})
            header, _ = read_frame(sock)
            assert header["ok"] is False
            assert "version mismatch" in header["message"]
            assert read_frame(sock) is None

    def test_hello_ok(self, server):
        with _raw_conn(server) as sock:
            write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
            header, _ = read_frame(sock)
            assert header["ok"] is True
            assert header["version"] == PROTOCOL_VERSION

    def test_unknown_op_is_an_error_but_keeps_the_connection(self, server):
        with _raw_conn(server) as sock:
            write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
            read_frame(sock)
            write_frame(sock, {"op": "FROBNICATE"})
            header, _ = read_frame(sock)
            assert header["ok"] is False
            assert header["error"] == "ProtocolError"
            write_frame(sock, {"op": "STATS"})
            header, _ = read_frame(sock)
            assert header["ok"] is True


class TestMessages:
    def test_query_fetch_close_lifecycle(self, server):
        with RemoteSession(*server.address, batch_size=2) as db:
            result = db.query("path(1, X)")
            assert sorted(a["X"] for a in result) == [2, 3, 4]
            # exhausted cursor was freed server-side
            assert db.stats()["cursors"]["open"] == 0

    def test_fetch_unknown_cursor(self, server):
        with _raw_conn(server) as sock:
            write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
            read_frame(sock)
            write_frame(sock, {"op": "FETCH", "cursor": 424242})
            header, _ = read_frame(sock)
            assert header["ok"] is False
            assert "unknown cursor" in header["message"]

    def test_parse_error_surfaces_as_parse_error(self, server):
        with RemoteSession(*server.address) as db:
            with pytest.raises(ParseError):
                db.query("path(1, ")

    def test_insert_delete_changed_flags(self, server):
        with RemoteSession(*server.address) as db:
            assert db.insert("scratch", 1, "a") is True
            assert db.insert("scratch", 1, "a") is False  # duplicate
            assert db.delete("scratch", 1, "a") is True
            assert db.delete("scratch", 1, "a") is False

    def test_consult_string_returns_cursors_for_queries(self, server):
        with RemoteSession(*server.address) as db:
            results = db.consult_string("color(red). color(blue). color(C)?")
            assert len(results) == 1
            assert sorted(results[0].tuples()) == [("blue",), ("red",)]

    def test_remote_consult_command_refused(self, server):
        with RemoteSession(*server.address) as db:
            with pytest.raises(ProtocolError, match="server-side files"):
                db.consult_string('@consult "/etc/passwd".')

    def test_query_values_none_is_free_variable(self, server):
        with RemoteSession(*server.address) as db:
            assert sorted(db.query_values("edge", 1, None).tuples()) == [(1, 2)]
            assert sorted(db.query_values("edge", None, None).tuples()) == [
                (1, 2), (2, 3), (3, 4),
            ]

    def test_bye_then_session_close_is_clean(self, server):
        db = RemoteSession(*server.address)
        db.query("edge(X, Y)").all()
        db.close()
        db.close()  # idempotent
        with pytest.raises(ProtocolError, match="closed"):
            db.query("edge(X, Y)")

    def test_stats_shape(self, server):
        with RemoteSession(*server.address) as db:
            stats = db.stats()
            assert stats["connections"]["active"] >= 1
            assert {"opened", "closed", "open"} <= set(stats["cursors"])
            assert "inferences" in stats["eval"]
            assert "server.requests" in stats["metrics"]
