"""Property-based tests over the whole evaluation stack: rewriting variants
must agree with each other and with reference algorithms, on arbitrary
inputs; relation invariants must hold under arbitrary operation sequences."""

import heapq

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.relations import HashRelation, Tuple
from repro.terms import Int, Var
from repro.terms.unify import subsumes_all


def _tc_program(edges, flags=""):
    facts = " ".join(f"edge({a}, {b})." for a, b in sorted(set(edges)))
    return f"""
    {facts}
    module tc.
    export path(bf).
    {flags}
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
    """


edges_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=14,
)


class TestRewritingAgreementProperties:
    @settings(max_examples=20, deadline=None)
    @given(edges=edges_strategy, source=st.integers(0, 6))
    def test_magic_variants_agree_with_unrewritten(self, edges, source):
        expected = None
        for flags in ("@no_rewriting.", "", "@magic.", "@supplementary_magic_goalid."):
            session = Session()
            session.consult_string(_tc_program(edges, flags))
            answers = sorted(a["Y"] for a in session.query(f"path({source}, Y)"))
            if expected is None:
                expected = answers
            assert answers == expected, flags

    @settings(max_examples=15, deadline=None)
    @given(edges=edges_strategy, source=st.integers(0, 6))
    def test_factoring_agrees_when_applicable(self, edges, source):
        plain = Session()
        plain.consult_string(_tc_program(edges))
        factored = Session()
        factored.consult_string(_tc_program(edges, "@context_factoring."))
        assert sorted(a["Y"] for a in plain.query(f"path({source}, Y)")) == sorted(
            a["Y"] for a in factored.query(f"path({source}, Y)")
        )

    @settings(max_examples=15, deadline=None)
    @given(edges=edges_strategy, source=st.integers(0, 6))
    def test_pipelining_same_distinct_answers(self, edges, source):
        # pipelining loops forever on cyclic graphs (like Prolog), so only
        # exercise it on DAGs: keep edges strictly increasing
        dag = [(a, b) for a, b in edges if a < b]
        if not dag:
            return
        materialized = Session()
        materialized.consult_string(_tc_program(dag))
        pipelined = Session()
        pipelined.consult_string(_tc_program(dag, "@pipelining."))
        expected = sorted(
            set(a["Y"] for a in materialized.query(f"path({source}, Y)"))
        )
        got = sorted(set(a["Y"] for a in pipelined.query(f"path({source}, Y)")))
        assert got == expected


class TestShortestPathProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        weighted=st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 5), st.integers(1, 9)
            ).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=12,
            unique_by=lambda e: (e[0], e[1]),
        )
    )
    def test_figure_3_matches_dijkstra(self, weighted):
        facts = " ".join(f"edge({a}, {b}, {w})." for a, b, w in weighted)
        session = Session()
        session.consult_string(
            facts
            + """
            module s_p.
            export s_p(bfff).
            @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
            @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
            s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
            s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
            p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                               append([edge(Z, Y)], P, P1), C1 = C + EC.
            p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
            end_module.
            """
        )
        got = {a["Y"]: a["C"] for a in session.query("s_p(0, Y, P, C)")}

        adjacency = {}
        for a, b, w in weighted:
            adjacency.setdefault(a, []).append((b, w))
        # reference: shortest non-empty path from 0 to each node
        best = {}
        heap = [(w, b) for b, w in adjacency.get(0, [])]
        heapq.heapify(heap)
        while heap:
            d, node = heapq.heappop(heap)
            if node in best:
                continue
            best[node] = d
            for other, w in adjacency.get(node, []):
                if other not in best:
                    heapq.heappush(heap, (d + w, other))
        assert got == best


class TestRelationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "mark"]),
                st.integers(0, 8),
                st.integers(0, 8),
            ),
            max_size=60,
        )
    )
    def test_marks_partition_contents(self, operations):
        """At any point, the union of all mark ranges equals a full scan,
        and the ranges are disjoint."""
        relation = HashRelation("p", 2)
        marks = [0]
        for op, a, b in operations:
            if op == "insert":
                relation.insert(Tuple((Int(a), Int(b))))
            elif op == "delete":
                relation.delete(Tuple((Int(a), Int(b))))
            else:
                marks.append(relation.mark())
        marks.append(None)  # open end
        pieces = []
        for since, until in zip(marks, marks[1:]):
            pieces.append(
                [t.key() for t in relation.scan(since=since, until=until)]
            )
        flattened = [key for piece in pieces for key in piece]
        assert sorted(flattened) == sorted(t.key() for t in relation.scan())
        assert len(flattened) == len(set(flattened)) == len(relation)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.one_of(st.integers(0, 3), st.none()),
                st.one_of(st.integers(0, 3), st.none()),
            ),
            max_size=25,
        )
    )
    def test_no_stored_fact_subsumes_another_newer_one(self, rows):
        """SET policy invariant: for any insertion order of (possibly
        non-ground) facts, no stored fact is subsumed by one stored BEFORE
        it (subsumption checks reject such inserts)."""
        relation = HashRelation("p", 2)
        stored_in_order = []
        for left, right in rows:
            args = tuple(
                Int(v) if v is not None else Var("_") for v in (left, right)
            )
            if relation.insert(Tuple(args)):
                stored_in_order.append(args)
        for earlier_index, earlier in enumerate(stored_in_order):
            for later in stored_in_order[earlier_index + 1 :]:
                assert not subsumes_all(earlier, later)


class TestOrderedSearchAgreement:
    @settings(max_examples=15, deadline=None)
    @given(edges=edges_strategy, source=st.integers(0, 6))
    def test_ordered_search_matches_fixpoint_on_positive_programs(
        self, edges, source
    ):
        """On plain positive recursion (where both apply), the ordered-search
        evaluator and the magic-rewritten fixpoint agree exactly."""
        fixpoint = Session()
        fixpoint.consult_string(_tc_program(edges))
        ordered = Session()
        ordered.consult_string(_tc_program(edges, "@ordered_search."))
        assert sorted(
            a["Y"] for a in fixpoint.query(f"path({source}, Y)")
        ) == sorted(a["Y"] for a in ordered.query(f"path({source}, Y)"))

    @settings(max_examples=15, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(
                lambda e: e[0] < e[1]  # acyclic: win/move is modularly stratified
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_win_move_matches_negamax(self, edges):
        facts = " ".join(f"move({a}, {b})." for a, b in sorted(set(edges)))
        session = Session()
        session.consult_string(
            facts
            + """
            module game.
            export win(b).
            @ordered_search.
            win(X) :- move(X, Y), not win(Y).
            end_module.
            """
        )
        adjacency = {}
        for a, b in edges:
            adjacency.setdefault(a, []).append(b)
        memo = {}

        def wins(node):
            if node not in memo:
                memo[node] = False
                memo[node] = any(
                    not wins(nxt) for nxt in adjacency.get(node, [])
                )
            return memo[node]

        for node in range(6):
            got = len(session.query(f"win({node})").all()) == 1
            assert got == wins(node), node
