"""Log-shipping replication (ISSUE 6): the changelog codec, primary-to-
replica shipping, sequence gating, synchronous acknowledgement, promotion,
client failover, socket hygiene, and graceful shutdown.

The contract under test, end to end: every mutation a primary acknowledges
is either on the primary's durable changelog or (with ``sync_replicas``) on
a replica too; replicas apply idempotently and never silently diverge; a
client given the whole replica set keeps reading through a primary's death
and resumes writing after a promotion.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import (
    FailoverError,
    ProtocolError,
    ReadOnlyError,
    StorageError,
)
from repro.replication import (
    KIND_CONSULT,
    KIND_DELETE,
    KIND_INSERT,
    Changelog,
    decode_records,
    encode_mutation,
    replay_into,
)
from repro.server import CoralServer
from repro.server.protocol import PROTOCOL_VERSION, read_frame, write_frame
from repro.terms import to_arg

TC_PROGRAM = """
    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _primary(**kwargs):
    kwargs.setdefault("changelog", True)
    kwargs.setdefault("heartbeat", 0.05)
    return CoralServer(Session(), port=0, **kwargs)


def _replica(primary, name="r1", **kwargs):
    kwargs.setdefault("heartbeat", 0.05)
    return CoralServer(
        Session(),
        port=0,
        role="replica",
        replicate_from=primary.address,
        replica_name=name,
        **kwargs,
    )


def _caught_up(primary, *replicas):
    return _wait_until(
        lambda: all(
            r.changelog.last_seq == primary.changelog.last_seq
            for r in replicas
        )
    )


# ---------------------------------------------------------------------------
# the changelog codec
# ---------------------------------------------------------------------------


class TestChangelogCodec:
    def _sample_records(self):
        return [
            (KIND_INSERT, "edge", encode_mutation([[to_arg(1), to_arg(2)]])),
            (KIND_DELETE, "edge", encode_mutation([[to_arg(1), to_arg(2)]])),
            (KIND_CONSULT, "", b"p(1). p(2)."),
        ]

    def test_roundtrip_through_bytes(self):
        log = Changelog()
        for kind, pred, payload in self._sample_records():
            log.append(kind, pred, payload)
        blob = b"".join(
            [b"CORALL1\n\x00\x01"] + [r.encode() for r in log.records()]
        )
        decoded = decode_records(blob)
        assert [(r.seq, r.kind, r.pred, r.payload) for r in decoded] == [
            (r.seq, r.kind, r.pred, r.payload) for r in log.records()
        ]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "log")
        log = Changelog(path)
        log.append(KIND_INSERT, "p", encode_mutation([[to_arg(1)]]))
        log.append(KIND_INSERT, "p", encode_mutation([[to_arg(2)]]))
        log.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x00\x00\x00\x00\x03\x01")  # torn
        reopened = Changelog(path)
        assert reopened.last_seq == 2
        # and the torn bytes were truncated: the next append is readable
        reopened.append(KIND_INSERT, "p", encode_mutation([[to_arg(3)]]))
        reopened.close()
        assert Changelog(path).last_seq == 3

    def test_corrupt_record_mid_file_halts_replay(self, tmp_path):
        path = str(tmp_path / "log")
        log = Changelog(path)
        for i in range(3):
            log.append(KIND_INSERT, "p", encode_mutation([[to_arg(i)]]))
        log.close()
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[30] ^= 0xFF  # inside the first record, which is not the last
        with open(path, "wb") as handle:
            handle.write(data)
        with pytest.raises(StorageError, match="corrupt|checksum|sequence"):
            Changelog(path)

    def test_bad_magic_refused(self, tmp_path):
        path = str(tmp_path / "log")
        with open(path, "wb") as handle:
            handle.write(b"NOTALOG!\x00\x01" + b"\x00" * 64)
        with pytest.raises(StorageError, match="magic"):
            Changelog(path)

    def test_sequence_gate_on_explicit_appends(self):
        log = Changelog()
        log.append(KIND_INSERT, "p", b"x", seq=1)
        with pytest.raises(StorageError, match="sequence"):
            log.append(KIND_INSERT, "p", b"x", seq=3)  # gap
        with pytest.raises(StorageError, match="sequence"):
            log.append(KIND_INSERT, "p", b"x", seq=1)  # duplicate
        log.append(KIND_INSERT, "p", b"x", seq=2)
        assert log.last_seq == 2

    def test_durable_reopen_resumes_sequence(self, tmp_path):
        path = str(tmp_path / "log")
        log = Changelog(path)
        for kind, pred, payload in self._sample_records():
            log.append(kind, pred, payload)
        log.close()
        reopened = Changelog(path)
        assert reopened.last_seq == 3
        record = reopened.append(KIND_INSERT, "q", b"more")
        assert record.seq == 4

    def test_wait_for_times_out_to_none(self):
        log = Changelog()
        assert log.wait_for(1, timeout=0.01) is None

    def test_replay_rebuilds_a_session(self):
        log = Changelog()
        log.append(KIND_CONSULT, "", b"edge(1, 2).")
        log.append(KIND_INSERT, "edge", encode_mutation([[to_arg(2), to_arg(3)]]))
        log.append(KIND_DELETE, "edge", encode_mutation([[to_arg(1), to_arg(2)]]))
        session = Session()
        assert replay_into(session, log.records()) == 3
        assert session.query("edge(X, Y)").tuples() == [(2, 3)]


# ---------------------------------------------------------------------------
# shipping: primary -> replica
# ---------------------------------------------------------------------------


class TestShipping:
    def test_writes_and_consults_ship_to_the_replica(self):
        with _primary() as primary, _replica(primary) as replica:
            with RemoteSession(*primary.address) as db:
                db.insert("edge", 1, 2)
                db.insert("edge", 2, 3)
                db.consult_string(TC_PROGRAM)
                db.delete("edge", 2, 3)
                db.insert("edge", 2, 4)
            assert _caught_up(primary, replica)
            with RemoteSession(*replica.address) as db:
                assert sorted(db.query("edge(X, Y)").tuples()) == [
                    (1, 2), (2, 4),
                ]
                # the shipped module evaluates on the replica
                assert sorted(db.query("path(1, Y)").tuples()) == [
                    (1, 2), (1, 4),
                ]

    def test_replica_refuses_writes(self):
        with _primary() as primary, _replica(primary) as replica:
            with RemoteSession(*replica.address) as db:
                with pytest.raises(ReadOnlyError, match="read replica"):
                    db.insert("edge", 1, 2)
                with pytest.raises(ReadOnlyError):
                    db.delete("edge", 1, 2)
                with pytest.raises(ReadOnlyError):
                    db.consult_string("p(1).")

    def test_duplicate_and_gap_sequence_gating(self):
        with _primary() as primary, _replica(primary) as replica:
            with RemoteSession(*primary.address) as db:
                db.insert("edge", 1, 2)
            assert _caught_up(primary, replica)
            record = primary.changelog.get(1)
            # a re-shipped duplicate is dropped, not re-applied
            assert (
                replica.apply_replicated(
                    1, record.kind, record.pred, record.payload
                )
                is False
            )
            # a gap forces a reconnect instead of silently diverging
            with pytest.raises(ProtocolError, match="gap"):
                replica.apply_replicated(
                    5, record.kind, record.pred, record.payload
                )
            assert replica.changelog.last_seq == 1

    def test_late_joining_replica_catches_up_from_scratch(self):
        with _primary() as primary:
            with RemoteSession(*primary.address) as db:
                for i in range(10):
                    db.insert("edge", i, i + 1)
            with _replica(primary, name="late") as replica:
                assert _caught_up(primary, replica)
                with RemoteSession(*replica.address) as db:
                    assert len(db.query("edge(X, Y)").tuples()) == 10

    def test_replica_reconnects_after_primary_restart(self, tmp_path):
        log_path = str(tmp_path / "changelog")
        primary = _primary(changelog=log_path).start()
        host, port = primary.address
        with _replica(primary) as replica:
            with RemoteSession(host, port) as db:
                db.insert("edge", 1, 2)
            assert _caught_up(primary, replica)
            primary.shutdown()
            # restart the primary on the same changelog and the same port
            primary = CoralServer(
                Session(), host=host, port=port,
                changelog=log_path, heartbeat=0.05,
            ).start()
            try:
                assert primary.changelog.last_seq == 1  # replayed from disk
                with RemoteSession(host, port) as db:
                    db.insert("edge", 2, 3)
                assert _caught_up(primary, replica)
                with RemoteSession(*replica.address) as db:
                    assert sorted(db.query("edge(X, Y)").tuples()) == [
                        (1, 2), (2, 3),
                    ]
                assert replica.repl_client.reconnects >= 1
            finally:
                primary.shutdown()

    def test_sync_replicas_blocks_until_acknowledged(self):
        with _primary(sync_replicas=1, ack_timeout=5.0) as primary:
            with _replica(primary) as replica:
                assert _wait_until(lambda: replica.repl_client.connected)
                with RemoteSession(*primary.address) as db:
                    db.insert("edge", 1, 2)
                # the write returned only after the replica acknowledged it
                assert replica.changelog.last_seq == 1

    def test_sync_replicas_times_out_without_replicas(self):
        with _primary(sync_replicas=1, ack_timeout=0.2) as primary:
            with RemoteSession(*primary.address) as db:
                with pytest.raises(StorageError, match="sync timeout"):
                    db.insert("edge", 1, 2)
                # the write is durable locally, merely unacknowledged
                assert primary.changelog.last_seq == 1

    def test_stats_and_metrics_expose_lag(self):
        with _primary() as primary, _replica(primary) as replica:
            with RemoteSession(*primary.address) as db:
                db.insert("edge", 1, 2)
            assert _caught_up(primary, replica)
            assert _wait_until(
                lambda: "r1"
                in primary.replication_stats().get("replicas", {})
            )
            pstats = primary.replication_stats()
            assert pstats["role"] == "primary"
            assert pstats["last_seq"] == 1
            assert pstats["replicas"]["r1"]["lag_records"] == 0
            rstats = replica.replication_stats()
            assert rstats["role"] == "replica"
            assert rstats["upstream"]["lag_records"] == 0
            assert rstats["upstream"]["connected"] is True
            # the gauges behind /metrics agree
            replica._refresh_replica_gauges()
            assert replica.metrics.gauge(
                "replication.last_seq", ""
            ).value() == 1.0
            assert replica.metrics.gauge(
                "replication.lag_records", ""
            ).value() == 0.0
            # STATS over the wire carries the role and the section
            with RemoteSession(*replica.address) as db:
                stats = db.stats()
                assert stats["role"] == "replica"
                assert stats["replication"]["upstream"]["upstream_seq"] == 1

    def test_replica_health_degrades_when_primary_dies(self):
        primary = _primary().start()
        with _replica(primary, stall_after=0.2) as replica:
            assert _wait_until(lambda: replica.repl_client.connected)
            ok, detail = replica._health()
            assert ok and "replica" in detail
            primary.shutdown()
            assert _wait_until(
                lambda: replica._health()[0] is False, timeout=5.0
            )
            ok, detail = replica._health()
            assert not ok and "degraded" in detail


# ---------------------------------------------------------------------------
# promotion
# ---------------------------------------------------------------------------


class TestPromotion:
    def test_promote_turns_a_replica_writable(self):
        with _primary() as primary, _replica(primary) as replica:
            with RemoteSession(*primary.address) as db:
                db.insert("edge", 1, 2)
            assert _caught_up(primary, replica)
            primary.shutdown()
            out = replica.promote()
            assert out["promoted"] is True and out["last_seq"] == 1
            assert replica.role == "primary"
            with RemoteSession(*replica.address) as db:
                assert db.insert("edge", 2, 3) is True
                assert sorted(db.query("edge(X, Y)").tuples()) == [
                    (1, 2), (2, 3),
                ]
            # the new primary's changelog continued the sequence
            assert replica.changelog.last_seq == 2

    def test_promote_is_idempotent(self):
        with _primary() as primary:
            out = primary.promote()
            assert out["promoted"] is False and out["role"] == "primary"

    def test_promote_over_the_wire_and_surviving_replica_retargets(self):
        with _primary() as primary:
            with _replica(primary, name="r1") as r1, _replica(
                primary, name="r2"
            ) as r2:
                with RemoteSession(*primary.address) as db:
                    db.insert("edge", 1, 2)
                assert _caught_up(primary, r1, r2)
                primary.shutdown()
                with RemoteSession(*r1.address) as db:
                    assert db.promote()["promoted"] is True
                # re-point the survivor at the new primary; its stream
                # resumes from its own sequence
                r2.set_upstream(*r1.address)
                with RemoteSession(*r1.address) as db:
                    db.insert("edge", 2, 3)
                assert _caught_up(r1, r2)
                with RemoteSession(*r2.address) as db:
                    assert sorted(db.query("edge(X, Y)").tuples()) == [
                        (1, 2), (2, 3),
                    ]


# ---------------------------------------------------------------------------
# client failover
# ---------------------------------------------------------------------------


class TestClientFailover:
    def test_single_endpoint_mode_is_unchanged(self):
        with _primary() as primary:
            with RemoteSession(*primary.address) as db:
                db.insert("edge", 1, 2)
                assert db.query("edge(X, Y)").tuples() == [(1, 2)]
                assert db.replica_set is False
                assert db.counters == {
                    "reconnects": 0, "retries": 0, "failovers": 0,
                }

    def test_reads_fail_over_to_the_next_endpoint(self):
        with _primary() as primary:
            with _replica(primary) as replica:
                ph, pp = primary.address
                rh, rp = replica.address
                db = RemoteSession(
                    [f"{ph}:{pp}", f"{rh}:{rp}"],
                    backoff=0.01, backoff_cap=0.05,
                )
                db.insert("edge", 1, 2)
                assert _caught_up(primary, replica)
                assert sorted(db.query("edge(X, Y)").tuples()) == [(1, 2)]
                primary.shutdown()
                # the next read silently lands on the replica
                assert sorted(db.query("edge(X, Y)").tuples()) == [(1, 2)]
                assert db.counters["failovers"] >= 1
                db.close()

    def test_in_flight_cursor_surfaces_failover_error(self):
        with _primary() as primary:
            with _replica(primary) as replica:
                ph, pp = primary.address
                rh, rp = replica.address
                with RemoteSession(*primary.address) as seed:
                    for i in range(6):
                        seed.insert("edge", i, i + 1)
                assert _caught_up(primary, replica)
                db = RemoteSession(
                    [f"{ph}:{pp}", f"{rh}:{rp}"],
                    backoff=0.01, backoff_cap=0.05,
                )
                cursor = db.query("edge(X, Y)", batch_size=1)
                assert cursor.get_next() is not None
                primary.shutdown()
                with pytest.raises(FailoverError, match="cursor"):
                    cursor.all()
                # already-fetched answers stay readable; new queries work
                assert len(cursor._cache) == 1
                assert len(db.query("edge(X, Y)").tuples()) == 6
                db.close()

    def test_writes_route_to_the_primary_wherever_it_is(self):
        with _primary() as primary:
            with _replica(primary) as replica:
                ph, pp = primary.address
                rh, rp = replica.address
                # the replica listed FIRST: the write probe must move on
                # from its ReadOnlyError to find the primary
                db = RemoteSession(
                    [f"{rh}:{rp}", f"{ph}:{pp}"],
                    backoff=0.01, backoff_cap=0.05,
                )
                assert db.insert("edge", 7, 8) is True
                assert primary.changelog.last_seq == 1
                db.close()

    def test_writes_resume_after_promotion(self):
        with _primary() as primary:
            with _replica(primary) as replica:
                ph, pp = primary.address
                rh, rp = replica.address
                db = RemoteSession(
                    [f"{ph}:{pp}", f"{rh}:{rp}"],
                    backoff=0.01, backoff_cap=0.05, retries=2,
                )
                db.insert("edge", 1, 2)
                assert _caught_up(primary, replica)
                primary.shutdown()
                with pytest.raises(FailoverError):
                    db.insert("edge", 2, 3)
                promoted = db.promote(f"{rh}:{rp}")
                assert promoted["promoted"] is True
                assert db.insert("edge", 2, 3) is True
                assert sorted(db.query("edge(X, Y)").tuples()) == [
                    (1, 2), (2, 3),
                ]
                db.close()

    def test_no_reachable_endpoint_raises_failover_error(self):
        with _primary() as primary:
            address = primary.address
        # the server is now down; both endpoints refuse connections
        with pytest.raises(FailoverError, match="no reachable server"):
            RemoteSession(
                [f"{address[0]}:{address[1]}"],
                timeout=0.5, backoff=0.01,
            )


# ---------------------------------------------------------------------------
# socket hygiene: io timeouts and idle reaping
# ---------------------------------------------------------------------------


class TestSocketHygiene:
    def test_idle_connection_is_reaped(self):
        session = Session()
        with CoralServer(
            session, port=0, io_timeout=0.05, idle_timeout=0.15
        ) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
            read_frame(sock)
            assert server.stats()["connections"]["active"] == 1
            # say nothing: the server reaps us at the idle deadline
            assert _wait_until(
                lambda: server.stats()["connections"]["active"] == 0,
                timeout=5.0,
            )
            assert (
                server.metrics.counter(
                    "server.errors", "", ("kind",)
                ).value("idle_reaped")
                == 1
            )
            sock.close()

    def test_stall_mid_frame_is_dropped_not_waited_forever(self):
        session = Session()
        with CoralServer(
            session, port=0, io_timeout=0.05, idle_timeout=5.0
        ) as server:
            sock = socket.create_connection(server.address, timeout=5.0)
            write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
            read_frame(sock)
            sock.sendall(b"\x00\x00")  # half a length prefix, then silence
            assert _wait_until(
                lambda: server.stats()["connections"]["active"] == 0,
                timeout=5.0,
            )
            assert (
                server.metrics.counter(
                    "server.errors", "", ("kind",)
                ).value("read")
                == 1
            )
            sock.close()

    def test_activity_resets_the_idle_deadline(self):
        session = Session()
        session.insert("edge", 1, 2)
        with CoralServer(
            session, port=0, io_timeout=0.05, idle_timeout=0.3
        ) as server:
            with RemoteSession(*server.address) as db:
                for _ in range(5):
                    time.sleep(0.15)  # beyond io_timeout, inside idle budget
                    assert db.query("edge(X, Y)").tuples() == [(1, 2)]


# ---------------------------------------------------------------------------
# the shell's replication commands
# ---------------------------------------------------------------------------


class TestShellCommands:
    def test_replicas_and_promote(self):
        from repro.shell import Shell

        with _primary() as primary, _replica(primary) as replica:
            with RemoteSession(*primary.address) as db:
                db.insert("edge", 1, 2)
            assert _caught_up(primary, replica)
            shell = Shell()
            assert "@connect" in shell.execute("@replicas.")
            assert "@connect" in shell.execute("@promote.")
            host, port = primary.address
            shell.execute(f"@connect {host}:{port}.")
            out = shell.execute("@replicas.")
            assert "role: primary" in out and "r1" in out
            assert "already the primary" in shell.execute("@promote.")
            shell.execute("@disconnect.")
            rhost, rport = replica.address
            shell.execute(f"@connect {rhost}:{rport}.")
            out = shell.execute("@replicas.")
            assert "role: replica" in out and "upstream" in out
            assert "promoted to primary" in shell.execute("@promote.")
            assert replica.role == "primary"
            shell.execute("@quit.")

    def test_replicas_on_a_plain_server(self):
        from repro.shell import Shell

        with CoralServer(Session(), port=0) as server:
            shell = Shell()
            host, port = server.address
            shell.execute(f"@connect {host}:{port}.")
            assert "not enabled" in shell.execute("@replicas.")
            shell.execute("@quit.")


# ---------------------------------------------------------------------------
# graceful shutdown
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    def test_drain_refuses_new_work_but_serves_open_cursors(self):
        session = Session()
        for i in range(6):
            session.insert("edge", i, i + 1)
        with CoralServer(session, port=0) as server:
            with RemoteSession(*server.address, batch_size=2) as db:
                cursor = db.query("edge(X, Y)")
                assert cursor.get_next() is not None
                assert server.drain(timeout=0.1) is False  # cursor open
                with pytest.raises(ProtocolError, match="draining"):
                    db.query("edge(X, Y)")
                with pytest.raises(ProtocolError, match="draining"):
                    db.insert("edge", 9, 9)
                # the open cursor still streams to completion
                assert len(cursor.all()) == 6
                assert server.drain(timeout=1.0) is True

    def test_draining_server_refuses_new_connections(self):
        session = Session()
        with CoralServer(session, port=0) as server:
            server.drain(timeout=0.05)
            with pytest.raises(ProtocolError):
                RemoteSession(*server.address, timeout=1.0)

    def test_sigterm_mid_fetch_exits_clean_and_keeps_storage_intact(
        self, tmp_path
    ):
        """The regression: SIGTERM while a client is mid-FETCH must drain,
        flush, exit 0 — and the storage directory must reopen with every
        acknowledged row intact and no journal left behind."""
        data_dir = str(tmp_path / "data")
        with Session(data_directory=data_dir) as seed:
            seed.persistent_relation("acct", 2)
            for i in range(30):
                seed.insert("acct", i, f"row-{i}")

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.server",
                "--port", "0",
                "--data-dir", data_dir,
                "--persistent", "acct/2",
                "--drain-timeout", "2.0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            host, port = banner.split()[-2].rsplit(":", 1)
            with RemoteSession(host, int(port), batch_size=4) as db:
                assert db.insert("acct", 999, "written-over-the-wire")
                cursor = db.query("acct(X, Y)", batch_size=4)
                assert cursor.get_next() is not None  # mid-FETCH now
                proc.send_signal(signal.SIGTERM)
                # draining: the in-flight cursor may finish its stream
                try:
                    cursor.all()
                except ProtocolError:
                    pass  # the drain deadline may cut the stream; that's fine
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        output = proc.stdout.read()
        assert proc.returncode == 0, output
        assert "clean shutdown" in output, output

        # storage survived: recovery-clean, every row present
        assert not os.path.exists(os.path.join(data_dir, "undo.journal"))
        with Session(data_directory=data_dir) as check:
            check.persistent_relation("acct", 2)
            rows = set(check.query("acct(X, Y)").tuples())
        assert rows == {(i, f"row-{i}") for i in range(30)} | {
            (999, "written-over-the-wire")
        }
