"""A full system scenario exercising every deliverable surface in one flow:
files on disk, persistent base data, multiple modules with mixed evaluation
strategies, aggregation, lint, tracing, and text-file round trips.

This is the 'downstream user' test: if this passes, the pieces compose the
way the README promises.
"""

import pytest

from repro import Session
from repro.lint import check_source


PROGRAM = """
% ---- analytics over a flight network --------------------------------

module reach.
export connected(bf).
connected(X, Y) :- flight(X, Y, _).
connected(X, Y) :- flight(X, Z, _), connected(Z, Y).
end_module.

module fares.
export cheapest(bbf).
@aggregate_selection leg(X, Y, C) (X, Y) min(C).
leg(X, Y, C) :- flight(X, Y, C).
leg(X, Y, C) :- flight(X, Z, C1), leg(Z, Y, C2), C = C1 + C2.
cheapest(X, Y, C) :- leg(X, Y, C).
end_module.

module reporting.
export hub_traffic(ff).
hub_traffic(A, count(<D>)) :- flight(A, D, _).
end_module.

module alerts.
export expensive_route(f).
@pipelining.
expensive_route(route(X, Y)) :- flight(X, Y, C), C > 500.
end_module.
"""

FLIGHTS = [
    ("msn", "ord", 120),
    ("ord", "jfk", 310),
    ("ord", "den", 280),
    ("den", "sfo", 240),
    ("jfk", "sfo", 650),
    ("sfo", "nrt", 900),
    ("ord", "sfo", 620),
]


@pytest.fixture
def deployed(tmp_path):
    """A session with persistent flight data and the program on disk."""
    # first process: load the data into persistent storage
    storage_dir = tmp_path / "data"
    loader = Session(data_directory=str(storage_dir))
    flights = loader.persistent_relation("flight", 3)
    flights.create_index([0])
    for origin, destination, cost in FLIGHTS:
        flights.insert_values(origin, destination, cost)
    loader.close()

    # the program ships as a file
    program_path = tmp_path / "analytics.coral"
    program_path.write_text(PROGRAM)

    # second process: open the same storage, consult the program
    session = Session(data_directory=str(storage_dir))
    session.persistent_relation("flight", 3)
    session.consult(str(program_path))
    return session


class TestSystemScenario:
    def test_lint_is_clean(self, deployed, tmp_path):
        findings = check_source(PROGRAM, deployed)
        assert findings == []

    def test_reachability_over_persistent_data(self, deployed):
        answers = sorted(a["Y"] for a in deployed.query("connected(msn, Y)"))
        assert answers == ["den", "jfk", "nrt", "ord", "sfo"]

    def test_cheapest_fare_uses_aggregate_selection(self, deployed):
        answers = deployed.query("cheapest(msn, sfo, C)").all()
        # msn->ord->den->sfo = 120+280+240 = 640 beats ord->sfo 620+120=740
        # and ord->jfk->sfo = 120+310+650 = 1080
        assert [a["C"] for a in answers] == [640]

    def test_hub_traffic_aggregation(self, deployed):
        rows = dict(deployed.query("hub_traffic(A, N)").tuples())
        assert rows["ord"] == 3

    def test_pipelined_alerts(self, deployed):
        alerts = {str(a.term("R")) for a in deployed.query("expensive_route(R)")}
        assert alerts == {"route(jfk, sfo)", "route(sfo, nrt)", "route(ord, sfo)"}

    def test_tracing_explains_a_derived_fact(self, deployed):
        tracer = deployed.enable_tracing()
        deployed.query("connected(msn, Y)").all()
        recorded = tracer.find("connected")
        assert recorded
        tree = tracer.why(recorded[0])
        assert "via" in tree or "[base]" in tree

    def test_dump_derived_results_and_reload(self, deployed, tmp_path):
        # materialize a derived result into a base relation, dump, reload
        for answer in deployed.query("connected(msn, Y)"):
            deployed.insert("msn_reach", answer["Y"])
        out = tmp_path / "reach.coral"
        written = deployed.dump_relation("msn_reach", 1, str(out))
        assert written == 5
        fresh = Session()
        fresh.consult(str(out))
        assert len(fresh.query("msn_reach(X)").all()) == 5

    def test_statistics_accumulate(self, deployed):
        deployed.stats.reset()
        deployed.query("connected(ord, Y)").all()
        snapshot = deployed.stats.snapshot()
        assert snapshot["inferences"] > 0
        assert snapshot["module_calls"] >= 1

    def test_listing_available_for_debugging(self, deployed):
        deployed.query("cheapest(msn, sfo, C)").all()
        listing = deployed.modules.compiled_form(
            "fares", "cheapest", "bbf"
        ).listing()
        assert "leg" in listing
