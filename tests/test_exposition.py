"""Prometheus exposition: the text renderer, the HTTP telemetry endpoint,
and the end-to-end scrape of a live CoralServer — every scrape is validated
by the checked-in parser (tests/prom_parser.py), the same one the CI
telemetry-smoke job runs."""

import json
import urllib.error
import urllib.request

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.obs import FlightRecorder, MetricsRegistry, TelemetryServer
from repro.obs.exposition import metric_name, render_prometheus
from repro.server import CoralServer

from .prom_parser import ParseFailure, parse_and_validate, parse_text

TC_PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4).

    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


class TestMetricName:
    def test_dotted_names_become_underscored(self):
        assert metric_name("server.request.seconds") == (
            "coral_server_request_seconds"
        )

    def test_namespace_override(self):
        assert metric_name("x.y", namespace="app") == "app_x_y"

    def test_hostile_characters_sanitized(self):
        assert metric_name("a-b c/d") == "coral_a_b_c_d"


class TestRenderer:
    def _registry(self):
        registry = MetricsRegistry()
        counter = registry.counter("server.requests.total", "requests", ("op",))
        counter.inc(3, "QUERY")
        counter.inc(7, "FETCH")
        gauge = registry.gauge("server.connections.active", "connections")
        gauge.set(2)
        histogram = registry.histogram("server.request.seconds", "latency", ("op",))
        for value in (0.0002, 0.001, 0.02, 0.5):
            histogram.observe(value, "FETCH")
        return registry

    def test_roundtrip_through_parser(self):
        families = parse_and_validate(render_prometheus([self._registry()]))
        kinds = {family.kind for family in families.values()}
        assert kinds == {"counter", "gauge", "histogram"}
        counter = families["coral_server_requests_total"]
        by_op = {s.labels["op"]: s.value for s in counter.samples}
        assert by_op == {"QUERY": 3.0, "FETCH": 7.0}

    def test_histogram_buckets_are_cumulative_with_inf(self):
        families = parse_and_validate(render_prometheus([self._registry()]))
        histogram = families["coral_server_request_seconds"]
        buckets = [
            s for s in histogram.samples if s.name.endswith("_bucket")
        ]
        count = [s for s in histogram.samples if s.name.endswith("_count")]
        inf = [s for s in buckets if s.labels["le"] == "+Inf"]
        assert inf and count
        assert inf[0].value == count[0].value == 4.0

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd.label", "escapes", ("path",))
        hostile = 'quote:" backslash:\\ newline:\n'
        counter.inc(1, hostile)
        families = parse_and_validate(render_prometheus([registry]))
        (sample,) = families["coral_odd_label"].samples
        assert sample.labels["path"] == hostile

    def test_merges_registries_and_skips_kind_clashes(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("shared.metric", "from first").inc(1)
        second.gauge("shared.metric", "clashes").set(9)
        second.counter("only.second", "fine").inc(2)
        families = parse_and_validate(render_prometheus([first, second]))
        # the clash keeps the first family rather than emitting an invalid
        # document with two TYPE lines for one name
        assert families["coral_shared_metric"].kind == "counter"
        assert families["coral_only_second"].samples[0].value == 2.0

    def test_unlabelled_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("plain.seconds", "no labels")
        histogram.observe(0.01)
        families = parse_and_validate(render_prometheus([registry]))
        assert families["coral_plain_seconds"].kind == "histogram"


class TestParserRejectsBrokenDocuments:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ParseFailure, match="no # TYPE"):
            parse_and_validate("orphan_metric 1\n")

    def test_noncumulative_buckets_rejected(self):
        text = render_prometheus([TestRenderer()._registry()])
        broken = text.replace('le="+Inf"} 4', 'le="+Inf"} 1', 1)
        with pytest.raises(ParseFailure):
            parse_and_validate(broken)

    def test_missing_count_rejected(self):
        text = "\n".join(
            [
                "# TYPE h histogram",
                'h_bucket{le="1"} 1',
                'h_bucket{le="+Inf"} 1',
                "h_sum 0.5",
            ]
        )
        with pytest.raises(ParseFailure, match="_count"):
            parse_and_validate(text)

    def test_help_text_attached(self):
        families = parse_text(
            "# HELP m the help\n# TYPE m counter\nm 1\n"
        )
        assert families["m"].help == "the help"


class TestTelemetryServer:
    def test_serves_metrics_healthz_and_404(self):
        registry = MetricsRegistry()
        registry.counter("test.hits", "hits").inc(5)
        with TelemetryServer(port=0, registries=[registry]) as server:
            base = server.url
            families = parse_and_validate(_scrape(f"{base}/metrics"))
            assert families["coral_test_hits"].samples[0].value == 5.0
            health = json.loads(_scrape(f"{base}/healthz"))
            assert health["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError) as info:
                _scrape(f"{base}/nope")
            assert info.value.code == 404

    def test_degraded_health_is_503(self):
        with TelemetryServer(
            port=0, health=lambda: (False, "storage wedged")
        ) as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                _scrape(f"{server.url}/healthz")
            assert info.value.code == 503
            body = json.loads(info.value.read().decode())
            assert body["detail"] == "storage wedged"

    def test_flight_endpoint(self):
        recorder = FlightRecorder(capacity=16)
        recorder.event("hello", "test")
        with TelemetryServer(port=0, flight=recorder) as server:
            lines = _scrape(f"{server.url}/debug/flight").splitlines()
        events = [json.loads(line) for line in lines if line.strip()]
        assert any(event["name"] == "hello" for event in events)

    def test_flight_endpoint_404_without_recorder(self):
        with TelemetryServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                _scrape(f"{server.url}/debug/flight")
            assert info.value.code == 404


class TestServerEndToEnd:
    def test_live_scrape_has_all_three_kinds_with_labels(self):
        """The acceptance scrape: boot a CoralServer with a telemetry port,
        drive real requests through it, and validate the scrape."""
        session = Session()
        session.consult_string(TC_PROGRAM)
        server = CoralServer(session, port=0, telemetry_port=0, flight=True)
        server.start()
        try:
            with RemoteSession(*server.address) as db:
                assert len(db.query("path(1, X)").all()) == 3
            thost, tport = server.telemetry_address
            families = parse_and_validate(
                _scrape(f"http://{thost}:{tport}/metrics")
            )
        finally:
            server.shutdown()
            session.close()
        requests = families["coral_server_requests"]
        assert requests.kind == "counter"
        ops = {s.labels["op"] for s in requests.samples}
        assert {"HELLO", "QUERY", "FETCH"} <= ops
        gauge = families["coral_server_connections_active"]
        assert gauge.kind == "gauge"
        latency = families["coral_server_request_seconds"]
        assert latency.kind == "histogram"
        assert any(s.name.endswith("_bucket") for s in latency.samples)
        clients = families["coral_server_client_requests"]
        assert {"client"} == set(clients.samples[0].labels)
        preds = families["coral_server_query_predicates"]
        assert preds.samples[0].labels["pred"] == "path/2"

    def test_flight_ring_visible_over_http(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        server = CoralServer(session, port=0, telemetry_port=0, flight=True)
        server.start()
        try:
            with RemoteSession(*server.address) as db:
                db.query("path(1, X)").all()
            thost, tport = server.telemetry_address
            lines = _scrape(
                f"http://{thost}:{tport}/debug/flight"
            ).splitlines()
        finally:
            server.shutdown()
            session.close()
        events = [json.loads(line) for line in lines if line.strip()]
        assert events, "flight ring empty after evaluation"
        assert any(event["name"] == "fixpoint.iteration" for event in events)

    def test_no_telemetry_port_means_no_listener(self):
        session = Session()
        with CoralServer(session, port=0) as server:
            assert server.telemetry is None
            assert server.telemetry_address is None
