"""Tests for opt-in join ordering (Section 4.2) and for the re-parseability
of printed programs (the rewritten listing is a consultable text file)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.builtins import default_registry
from repro.language import parse_module, parse_program
from repro.language.ast import Literal, Rule
from repro.optimizer.joinorder import order_rule_body
from repro.terms import Int, Var

REGISTRY = default_registry()


def _order(source: str) -> str:
    module = parse_module(source)
    rule = order_rule_body(module.rules[0], REGISTRY.lookup)
    return str(rule)


class TestJoinOrdering:
    def test_comparison_scheduled_when_bound(self):
        ordered = _order(
            "module m. q(X) :- a(X), b(Y), X > 3. end_module."
        )
        # X > 3 moves right after a(X) binds X, ahead of the unrelated b(Y)
        assert ordered == "q(X) :- a(X), X > 3, b(Y)."

    def test_bound_probe_preferred(self):
        ordered = _order(
            "module m. q(X) :- a(X), c(Z), b(X, Y). end_module."
        )
        # after a(X), b(X, Y) has one bound argument; c(Z) has none
        assert ordered == "q(X) :- a(X), b(X, Y), c(Z)."

    def test_negation_deferred_until_safe(self):
        ordered = _order(
            "module m. q(X) :- not bad(Y), a(X), link(X, Y). end_module."
        )
        assert ordered.index("not bad") > ordered.index("link")

    def test_impure_rule_untouched(self):
        source = "module m. q(X) :- b(Y), write(Y), a(X). end_module."
        module = parse_module(source)
        assert order_rule_body(module.rules[0], REGISTRY.lookup) is module.rules[0]

    def test_equals_scheduled_when_one_side_bound(self):
        ordered = _order(
            "module m. q(Y) :- b(Z), a(X), Y = X + 1. end_module."
        )
        assert ordered.endswith("a(X), Y = (X + 1).") or ordered.endswith(
            "Y = (X + 1)."
        )

    def test_same_answers_with_and_without(self):
        program = """
        big(1). big(2). big(3). tiny(9). link(9, 2).

        module m.
        export q(f).
        {flags}
        q(X) :- big(X), tiny(T), link(T, X).
        end_module.
        """
        plain = Session()
        plain.consult_string(program.format(flags=""))
        ordered = Session()
        ordered.consult_string(program.format(flags="@join_ordering."))
        assert sorted(a["X"] for a in plain.query("q(X)")) == sorted(
            a["X"] for a in ordered.query("q(X)")
        )


class TestPrintedProgramsReparse:
    CASES = [
        "p(X, Y) :- edge(X, Y).",
        "p(X) :- q(X), not r(X).",
        "p(X, C) :- q(X, A, B), C = A + B * 2.",
        "p(X) :- q(X), X <= 5, X != 2.",
        "p(X, [X|T]) :- q(T).",
        'p("hello world", john, 3.5) :- q(1).',
        "p(f(g(X), 10)) :- q(X).",
    ]

    @pytest.mark.parametrize("clause", CASES)
    def test_round_trip_is_stable(self, clause):
        source = f"module m. {clause} end_module."
        first = str(parse_module(source).rules[0])
        second = str(parse_module(f"module m. {first} end_module.").rules[0])
        assert first == second

    def test_aggregation_head_round_trips(self):
        source = "module m. p(X, min(<C>)) :- q(X, C). end_module."
        printed = str(parse_module(source).rules[0])
        reparsed = parse_module(f"module m. {printed} end_module.").rules[0]
        assert reparsed.head_aggregates[0][1].function == "min"

    def test_rewritten_listing_reparses(self):
        """The optimizer's listing (minus comment lines) must be legal
        syntax — it is advertised as a debugging text file."""
        session = Session()
        session.consult_string(
            """
            module tc.
            export total(bf).
            total(X, C) :- edge(X, Y, W), C = W + 1.
            total(X, C) :- edge(X, Z, W), total(Z, C0), C = C0 + W.
            end_module.
            edge(1, 2, 5).
            """
        )
        listing = session.modules.compiled_form("tc", "total", "bf").listing()
        body = "\n".join(
            line for line in listing.splitlines() if not line.startswith("%")
        )
        parse_module(f"module copy.\n{body}\nend_module.")

    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(["p", "q", "edge"]),
        values=st.lists(st.integers(-99, 99), min_size=1, max_size=4),
    )
    def test_fact_round_trip_property(self, name, values):
        inner = ", ".join(str(v) for v in values)
        program = parse_program(f"{name}({inner}).")
        printed = str(program.facts[0])
        reparsed = parse_program(printed)
        assert reparsed.facts[0].head.args == program.facts[0].head.args
