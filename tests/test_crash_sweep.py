"""The crash sweep: enumerate every storage injection point across a
transactional workload — crash there, reopen, verify invariants.

Invariants checked after every schedule:

* the directory reopens (recovery runs) and leaves no journal behind;
* committed data is intact, byte-for-byte at the tuple level;
* aborted and in-flight data is absent;
* any B-tree index agrees exactly with the heap;
* the store stays usable (one more transactional round trip succeeds).

The sweep is deterministic: a probe run with a passive injector counts how
often each injection point is reached, then one schedule is generated per
(point, hit) pair plus torn-write and failed-fsync variants.  A separate
``chaos``-marked test runs a seeded randomized sweep over randomized
insert/delete/commit/abort workloads (``pytest -m chaos``).
"""

import os
import random
import shutil
import threading
import time

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import CoralError, StorageError
from repro.faults import FaultInjector, SimulatedCrash
from repro.relations import Tuple
from repro.replication import Changelog, replay_into
from repro.server import CoralServer
from repro.storage import PAGE_SIZE, BufferPool, PersistentRelation, StorageServer
from repro.storage.xact import _ENTRY_HEADER, _FILE_HEADER
from repro.terms import Int, Str

JOURNAL = "undo.journal"


# -- the workload ------------------------------------------------------------


class Model:
    """Python-level mirror of what the relation must contain.

    ``committed`` advances only when ``commit_transaction`` *returns* —
    journal removal is the commit point, so a crash anywhere inside commit
    legitimately rolls back."""

    def __init__(self):
        self.committed = set()
        self.working = set()

    def commit(self):
        self.committed = set(self.working)

    def abort(self):
        self.working = set(self.committed)


def _payload(i):
    return f"{i:03d}" + "x" * 500  # ~500B records: several pages of heap


def _row(i):
    return (i, _payload(i))


#: the deterministic workload: four transactions over a relation with a
#: B-tree index — inserts, deletes, a commit/commit/abort/commit pattern,
#: enough volume to allocate pages mid-transaction and force pool evictions
SCRIPT = [
    ("commit", [("insert", _row(i)) for i in range(12)]),
    (
        "commit",
        [("insert", _row(i)) for i in range(12, 18)]
        + [("delete", _row(2)), ("delete", _row(5))],
    ),
    (
        "abort",
        [("insert", _row(i)) for i in range(90, 96)] + [("delete", _row(7))],
    ),
    (
        "commit",
        [("insert", _row(i)) for i in range(40, 50)] + [("delete", _row(12))],
    ),
]


def _execute(directory, faults, model, script=SCRIPT):
    """Run the workload; a scheduled fault escapes as SimulatedCrash (the
    server object is then simply abandoned, like a killed process) or as
    StorageError (a failed I/O call)."""
    server = StorageServer(directory, faults=faults)
    # a deliberately tiny pool: dirty evictions (write-backs) happen
    # mid-transaction, so those paths land in the sweep too
    pool = BufferPool(server, capacity=3)
    relation = None
    for outcome, ops in script:
        server.begin_transaction()
        if relation is None:
            relation = PersistentRelation("acct", 2, pool)
            relation.create_index([0])
        for op, (key, payload) in ops:
            tup = Tuple((Int(key), Str(payload)))
            if op == "insert":
                relation.insert(tup)
                model.working.add((key, payload))
            else:
                relation.delete(tup)
                model.working.discard((key, payload))
        pool.flush_all()
        if outcome == "commit":
            server.commit_transaction()
            model.commit()
        else:
            pool.drop_all()
            server.abort_transaction()
            model.abort()
            # in-memory relation state (counts, last-page hint) is stale
            # after an abort; re-open from the catalog
            relation = PersistentRelation("acct", 2, pool)
    server.close()


def _reopen_and_verify(directory, expected, context=""):
    """Open the directory (running recovery) and check every invariant."""
    server = StorageServer(directory)
    try:
        assert not os.path.exists(
            os.path.join(directory, JOURNAL)
        ), f"{context}: recovery left a journal behind"
        pool = BufferPool(server, capacity=8)
        relation = PersistentRelation("acct", 2, pool)
        actual = {(t[0].value, t[1].value) for t in relation.scan()}
        assert actual == expected, (
            f"{context}: recovered state diverged "
            f"(missing {sorted(expected - actual)[:3]}, "
            f"extra {sorted(actual - expected)[:3]})"
        )
        assert len(relation) == len(expected), f"{context}: count mismatch"
        if (0,) in relation._indexes:
            via_index = {
                (t[0].value, t[1].value) for t in relation.scan_ordered([0])
            }
            assert via_index == actual, f"{context}: index diverged from heap"
        # the store must stay usable after recovery
        server.begin_transaction()
        relation.insert(Tuple((Int(999), Str("probe"))))
        pool.flush_all()
        server.commit_transaction()
        assert len(relation) == len(expected) + 1, f"{context}: store unusable"
    finally:
        server.close()


def _probe_counts(directory):
    """Run the workload fault-free and count arrivals per injection point."""
    injector = FaultInjector()
    model = Model()
    _execute(directory, injector, model)
    assert model.committed == model.working
    return dict(injector.counts), model.committed


# -- schedule enumeration -----------------------------------------------------

CRASH_POINTS = [
    "disk.write_page",
    "disk.read_page",
    "disk.allocate",
    "disk.sync",
    "disk.truncate",
    "journal.record",
    "journal.sync",
    "buffer.writeback",
    "buffer.flush",
    "server.write_page",
    "server.commit",
    "server.commit.cleanup",
    "server.abort",
]


def _spread(count, *fractions):
    """A deterministic spread of 1-based hit numbers across ``count``."""
    if count < 1:
        return []
    picks = {1, 2, 3, count}
    for fraction in fractions:
        picks.add(max(1, int(count * fraction)))
    return sorted(h for h in picks if 1 <= h <= count)


def _build_schedules(counts):
    schedules = []
    for point in CRASH_POINTS:
        for hit in _spread(counts.get(point, 0), 0.25, 0.5, 0.75):
            schedules.append(("crash", point, hit, None))
    for hit in _spread(counts.get("disk.write_page", 0), 0.4, 0.8):
        for keep in (0, 1, PAGE_SIZE // 2, PAGE_SIZE - 1):
            schedules.append(("tear", "disk.write_page", hit, keep))
    for hit in _spread(counts.get("journal.record", 0), 0.5):
        for keep in (0, 3, 11, 200):
            schedules.append(("tear", "journal.record", hit, keep))
    for point in ("disk.sync", "journal.sync"):
        for hit in _spread(counts.get(point, 0), 0.5):
            schedules.append(("fail", point, hit, None))
    return schedules


def _injector_for(action, point, hit, keep):
    injector = FaultInjector()
    if action == "crash":
        injector.crash_at(point, hit)
    elif action == "fail":
        injector.fail_at(point, hit)
    else:
        injector.tear_at(point, hit, keep_bytes=keep)
    return injector


def _run_schedule(directory, action, point, hit, keep):
    injector = _injector_for(action, point, hit, keep)
    model = Model()
    crashed = False
    try:
        _execute(directory, injector, model)
    except (SimulatedCrash, StorageError):
        crashed = True
    assert crashed, f"schedule {action}@{point}#{hit} never fired"
    _reopen_and_verify(
        directory, model.committed, context=f"{action}@{point}#{hit} keep={keep}"
    )


# -- the sweep ---------------------------------------------------------------


def test_crash_sweep_covers_every_injection_point(tmp_path):
    counts, _ = _probe_counts(str(tmp_path / "probe"))
    # the workload must actually reach the interesting points
    for point in (
        "disk.write_page",
        "disk.allocate",
        "disk.sync",
        "disk.truncate",
        "journal.record",
        "journal.sync",
        "buffer.flush",
        "buffer.writeback",
        "server.commit",
        "server.commit.cleanup",
        "server.abort",
    ):
        assert counts.get(point, 0) > 0, f"workload never reaches {point}"

    schedules = _build_schedules(counts)
    assert len(schedules) >= 50, (
        f"sweep shrank to {len(schedules)} schedules; the acceptance bar is 50"
    )
    for index, (action, point, hit, keep) in enumerate(schedules):
        _run_schedule(str(tmp_path / f"s{index}"), action, point, hit, keep)


def test_crash_during_recovery_then_recover_again(tmp_path):
    """Re-crash during recovery, recover again: recovery is idempotent."""
    crashed_dir = str(tmp_path / "crashed")
    model = Model()
    with pytest.raises(SimulatedCrash):
        # the third commit is the last transaction's: its journal holds
        # before-images of pre-existing pages plus file lengths
        _execute(crashed_dir, FaultInjector().crash_at("server.commit", 3), model)
    assert os.path.exists(os.path.join(crashed_dir, JOURNAL))

    # probe how many recovery steps there are (on a copy: recovery consumes
    # the journal)
    probe_dir = str(tmp_path / "probe")
    shutil.copytree(crashed_dir, probe_dir)
    probe = FaultInjector()
    StorageServer(probe_dir, faults=probe).close()
    entry_count = probe.counts.get("server.recover.entry", 0)
    assert entry_count > 0, "recovery applied no before-images"

    recovery_points = [("server.recover.start", 1), ("server.recover.cleanup", 1)]
    recovery_points += [
        ("server.recover.entry", hit) for hit in _spread(entry_count, 0.5)
    ]
    for index, (point, hit) in enumerate(recovery_points):
        directory = str(tmp_path / f"r{index}")
        shutil.copytree(crashed_dir, directory)
        with pytest.raises(SimulatedCrash):
            StorageServer(directory, faults=FaultInjector().crash_at(point, hit))
        assert os.path.exists(
            os.path.join(directory, JOURNAL)
        ), f"crash at {point}#{hit} lost the journal before recovery finished"
        _reopen_and_verify(
            directory, model.committed, context=f"re-crash {point}#{hit}"
        )


class TestCorruptedJournal:
    def _crashed_directory(self, tmp_path):
        directory = str(tmp_path / "crashed")
        model = Model()
        with pytest.raises(SimulatedCrash):
            _execute(
                directory, FaultInjector().crash_at("server.commit", 3), model
            )
        return directory, model

    def test_corrupted_entry_halts_recovery(self, tmp_path):
        directory, _model = self._crashed_directory(tmp_path)
        journal = os.path.join(directory, JOURNAL)
        with open(journal, "rb") as handle:
            data = bytearray(handle.read())
        # flip a byte inside the first entry's name — the entry is complete
        # (more entries follow), so this is corruption, not truncation
        offset = _FILE_HEADER.size + _ENTRY_HEADER.size + 1
        assert len(data) > offset + PAGE_SIZE, "journal too small to corrupt"
        data[offset] ^= 0xFF
        with open(journal, "wb") as handle:
            handle.write(data)
        with pytest.raises(StorageError, match="corrupt|checksum"):
            StorageServer(directory)
        # recovery halted before applying anything: the journal survives so
        # an operator can intervene
        assert os.path.exists(journal)
        with pytest.raises(StorageError):
            StorageServer(directory)  # and it halts again, deterministically

    def test_bad_magic_halts_recovery(self, tmp_path):
        directory, _model = self._crashed_directory(tmp_path)
        journal = os.path.join(directory, JOURNAL)
        with open(journal, "r+b") as handle:
            handle.write(b"GARBAGE!")
        with pytest.raises(StorageError, match="magic"):
            StorageServer(directory)

    def test_truncated_tail_is_forgiven(self, tmp_path):
        directory, model = self._crashed_directory(tmp_path)
        journal = os.path.join(directory, JOURNAL)
        with open(journal, "ab") as handle:
            handle.write(b"\x01\x00\x05\x00\x00")  # torn mid-header
        _reopen_and_verify(directory, model.committed, context="torn tail")


# -- the seeded randomized sweep (the long arm; `pytest -m chaos`) -----------


def _random_script(rng):
    """A random insert/delete/commit/abort workload; first txn commits so
    the relation and index exist."""
    script = []
    live = set()
    for txn in range(rng.randint(3, 5)):
        ops = []
        for _ in range(rng.randint(4, 14)):
            if live and rng.random() < 0.3:
                key = rng.choice(sorted(live))
                ops.append(("delete", _row(key)))
                live.discard(key)
            else:
                key = rng.randint(0, 60)
                ops.append(("insert", _row(key)))
                live.add(key)
        outcome = "commit" if txn == 0 or rng.random() < 0.7 else "abort"
        script.append((outcome, ops))
    return script


@pytest.mark.chaos
def test_randomized_crash_sweep(tmp_path):
    """Seeded, reproducible: random workloads x random crash points."""
    rng = random.Random(20260806)
    runs = 0
    for round_index in range(12):
        script = _random_script(rng)
        probe_dir = str(tmp_path / f"probe{round_index}")
        injector = FaultInjector()
        model = Model()
        _execute(probe_dir, injector, model, script=script)
        counts = {p: c for p, c in injector.counts.items() if c > 0}
        points = sorted(counts)
        for pick in range(5):
            point = rng.choice(points)
            hit = rng.randint(1, counts[point])
            action = "crash"
            keep = None
            if point in ("disk.write_page", "journal.record") and rng.random() < 0.4:
                action = "tear"
                keep = rng.randint(0, PAGE_SIZE - 1)
            elif point.endswith(".sync") and rng.random() < 0.5:
                action = "fail"
            directory = str(tmp_path / f"c{round_index}_{pick}")
            faulted = _injector_for(action, point, hit, keep)
            chaos_model = Model()
            try:
                _execute(directory, faulted, chaos_model, script=script)
            except (SimulatedCrash, StorageError):
                pass
            _reopen_and_verify(
                directory,
                chaos_model.committed,
                context=f"chaos {action}@{point}#{hit} round {round_index}",
            )
            runs += 1
    assert runs == 60


# -- kill the primary (docs/REPLICATION.md) ----------------------------------
#
# The replication analogue of the storage sweep above: crash the primary at a
# replication or network injection point while concurrent writers hammer it
# with synchronous replication on, then fail over and check the durability
# contract — every write the primary ACKNOWLEDGED survives on the promoted
# replica, the surviving replicas converge to identical contents, and the
# replica state is a prefix of the primary's durable changelog.  Writes that
# errored (crashed connection, sync-ack timeout) are allowed to be lost; what
# is never allowed is losing an acknowledged one.

REPL_KILL_SCHEDULES = [
    # (point, hit, side) — where the SimulatedCrash lands and on whom
    ("repl.log", 3, "primary"),
    ("repl.log", 9, "primary"),
    ("repl.ship", 5, "primary"),
    ("repl.ack", 4, "primary"),
    ("net.write", 12, "primary"),
    ("repl.apply", 3, "replica"),
]


def _repl_wait(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _acked_writer(address, keys, acked, lock):
    """One writer: insert its keys one by one, recording exactly those the
    primary acknowledged.  A failed write reconnects and moves on — the
    crash under test kills connections, and a real client would too."""
    db = None
    try:
        for key in keys:
            row = (key, f"w{key}")
            try:
                if db is None:
                    db = RemoteSession(*address, timeout=3.0)
                if db.insert("acct", *row):
                    with lock:
                        acked.add(row)
            except (CoralError, OSError):
                if db is not None:
                    db.close()
                    db = None
    finally:
        if db is not None:
            db.close()


def _session_rows(session):
    return set(session.query("acct(X, Y)").tuples())


def _run_kill_schedule(tmp_path, index, point, hit, side):
    log_path = str(tmp_path / f"wal{index}")
    primary_faults = FaultInjector()
    replica_faults = FaultInjector()
    (primary_faults if side == "primary" else replica_faults).crash_at(
        point, hit
    )
    primary = CoralServer(
        Session(), port=0, changelog=log_path, sync_replicas=1,
        ack_timeout=2.0, heartbeat=0.02, faults=primary_faults,
    ).start()
    r1 = CoralServer(
        Session(), port=0, role="replica", replicate_from=primary.address,
        replica_name="r1", heartbeat=0.02, faults=replica_faults,
    ).start()
    r2 = CoralServer(
        Session(), port=0, role="replica", replicate_from=primary.address,
        replica_name="r2", heartbeat=0.02,
    ).start()
    context = f"kill {point}#{hit}@{side} (schedule {index})"
    acked = set()
    lock = threading.Lock()
    try:
        writers = [
            threading.Thread(
                target=_acked_writer,
                args=(primary.address, range(base, 24, 2), acked, lock),
            )
            for base in (0, 1)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=30.0)
        assert not any(w.is_alive() for w in writers), f"{context}: writer hung"
        assert not (
            primary_faults.pending() or replica_faults.pending()
        ), f"{context}: the scheduled fault never fired"
        assert acked, f"{context}: no write was ever acknowledged"

        # the kill: the primary process is gone (sockets severed, changelog
        # closed) with no warning to anyone
        primary.shutdown()

        # failover runbook: quiesce both streams, promote whichever replica
        # is further ahead, re-point the survivor at it
        for replica in (r1, r2):
            if replica.repl_client is not None:
                replica.repl_client.stop()
        target, other = (
            (r1, r2) if r1.changelog.last_seq >= r2.changelog.last_seq
            else (r2, r1)
        )
        assert target.promote()["promoted"] is True
        other.set_upstream(*target.address)
        assert _repl_wait(
            lambda: other.changelog.last_seq == target.changelog.last_seq
        ), f"{context}: survivor never caught up to the new primary"

        # the durability contract
        promoted_rows = _session_rows(target.session)
        missing = acked - promoted_rows
        assert not missing, (
            f"{context}: acknowledged writes lost in failover: "
            f"{sorted(missing)[:5]}"
        )
        assert _session_rows(other.session) == promoted_rows, (
            f"{context}: replicas diverged after failover"
        )

        # replica state is a prefix of the primary's durable changelog: a
        # cold rebuild from disk is a superset, and it too holds every ack
        cold = Session()
        replay_into(cold, Changelog(log_path).records())
        cold_rows = _session_rows(cold)
        assert promoted_rows <= cold_rows, (
            f"{context}: promoted replica holds rows the durable log never "
            f"recorded: {sorted(promoted_rows - cold_rows)[:5]}"
        )
        assert acked <= cold_rows, (
            f"{context}: acknowledged write missing from the durable log"
        )

        # the promoted primary serves writes; the survivor replicates them
        with RemoteSession(*target.address) as db:
            assert db.insert("acct", 999, "after-failover") is True
        assert _repl_wait(
            lambda: other.changelog.last_seq == target.changelog.last_seq
        ), f"{context}: post-failover write never reached the survivor"
    finally:
        primary.shutdown()
        r1.shutdown()
        r2.shutdown()


@pytest.mark.chaos
@pytest.mark.filterwarnings(
    # the repl.apply schedule crashes the replica's stream thread; the
    # SimulatedCrash escaping it is the point (nothing may swallow one)
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)
def test_kill_the_primary_sweep(tmp_path):
    for index, (point, hit, side) in enumerate(REPL_KILL_SCHEDULES):
        _run_kill_schedule(tmp_path, index, point, hit, side)
