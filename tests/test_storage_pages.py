"""Unit tests for serialization, slotted pages, disk files, transactions."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.file import DiskFile, StorageServer
from repro.storage.pages import PAGE_SIZE, Page, SlottedPage
from repro.storage.serde import (
    decode_tuple,
    encode_tuple,
    key_to_args,
    sort_key,
)
from repro.terms import Atom, BigNum, Double, Functor, Int, Str, Var


class TestSerde:
    def test_round_trip_all_primitive_types(self):
        args = [Int(42), Int(-7), Double(3.25), Str("hello world"), Atom("john")]
        assert decode_tuple(encode_tuple(args)) == args

    def test_round_trip_bignum(self):
        args = [BigNum(10**50), BigNum(-(10**50))]
        decoded = decode_tuple(encode_tuple(args))
        assert [a.value for a in decoded] == [10**50, -(10**50)]

    def test_round_trip_empty_tuple(self):
        assert decode_tuple(encode_tuple([])) == []

    def test_functor_rejected(self):
        """Paper Section 3.2: persistent tuples are primitive-only."""
        with pytest.raises(StorageError):
            encode_tuple([Functor("f", (Int(1),))])

    def test_variable_rejected(self):
        with pytest.raises(StorageError):
            encode_tuple([Var("X")])

    def test_atom_and_str_distinguished(self):
        atom, string = decode_tuple(encode_tuple([Atom("a"), Str("a")]))
        assert isinstance(atom, Atom) and isinstance(string, Str)

    def test_sort_key_orders_ints(self):
        assert sort_key([Int(1)]) < sort_key([Int(2)])

    def test_sort_key_total_order_across_types(self):
        keys = [sort_key([v]) for v in (Int(5), Double(1.0), Str("a"), Atom("a"))]
        assert sorted(keys)  # comparable without TypeError

    def test_key_round_trip(self):
        args = [Int(3), Str("x"), Atom("y"), Double(-2.5)]
        assert key_to_args(sort_key(args)) == args


class TestSlottedPage:
    def _page(self):
        return SlottedPage.initialize(Page("f", 0))

    def test_insert_and_get(self):
        page = self._page()
        slot = page.insert_record(b"hello")
        assert page.get_record(slot) == b"hello"

    def test_multiple_records_independent(self):
        page = self._page()
        slots = [page.insert_record(bytes([i]) * (i + 1)) for i in range(10)]
        for i, slot in enumerate(slots):
            assert page.get_record(slot) == bytes([i]) * (i + 1)

    def test_delete_leaves_tombstone(self):
        page = self._page()
        first = page.insert_record(b"aaa")
        second = page.insert_record(b"bbb")
        assert page.delete_record(first)
        assert page.get_record(first) is None
        assert page.get_record(second) == b"bbb"  # rid stability
        assert not page.delete_record(first)

    def test_records_iterates_live_only(self):
        page = self._page()
        page.insert_record(b"a")
        dead = page.insert_record(b"b")
        page.insert_record(b"c")
        page.delete_record(dead)
        assert [record for _slot, record in page.records()] == [b"a", b"c"]

    def test_page_fills_up(self):
        page = self._page()
        record = b"x" * 100
        count = 0
        while page.insert_record(record) is not None:
            count += 1
        assert count > 30  # ~4K / (100 + slot overhead)
        assert page.free_space() < 100 + 4

    def test_full_page_returns_none_not_corrupt(self):
        page = self._page()
        while page.insert_record(b"y" * 200) is not None:
            pass
        assert page.live_count() == sum(1 for _ in page.records())

    def test_out_of_range_slot_raises(self):
        page = self._page()
        with pytest.raises(StorageError):
            page.get_record(5)


class TestDiskFile:
    def test_allocate_read_write(self, tmp_path):
        handle = DiskFile(str(tmp_path / "t.pages"))
        pid = handle.allocate_page()
        handle.write_page(pid, b"z" * PAGE_SIZE)
        assert bytes(handle.read_page(pid)) == b"z" * PAGE_SIZE
        handle.close()

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "t.pages")
        handle = DiskFile(path)
        pid = handle.allocate_page()
        handle.write_page(pid, b"q" * PAGE_SIZE)
        handle.close()
        again = DiskFile(path)
        assert again.num_pages == 1
        assert bytes(again.read_page(pid)) == b"q" * PAGE_SIZE
        again.close()

    def test_read_beyond_end_raises(self, tmp_path):
        handle = DiskFile(str(tmp_path / "t.pages"))
        with pytest.raises(StorageError):
            handle.read_page(0)
        handle.close()


class TestServerAndTransactions:
    def test_server_counts_requests(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pid = server.allocate_page("r.heap")
        server.write_page("r.heap", pid, b"a" * PAGE_SIZE)
        server.read_page("r.heap", pid)
        assert server.stats.allocations == 1
        assert server.stats.page_writes == 1
        assert server.stats.page_reads == 1
        server.close()

    def test_commit_keeps_writes(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pid = server.allocate_page("f")
        server.write_page("f", pid, b"1" * PAGE_SIZE)
        server.begin_transaction()
        server.write_page("f", pid, b"2" * PAGE_SIZE)
        server.commit_transaction()
        assert bytes(server.read_page("f", pid)) == b"2" * PAGE_SIZE
        server.close()

    def test_abort_restores_before_images(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pid = server.allocate_page("f")
        server.write_page("f", pid, b"1" * PAGE_SIZE)
        server.begin_transaction()
        server.write_page("f", pid, b"2" * PAGE_SIZE)
        server.write_page("f", pid, b"3" * PAGE_SIZE)
        server.abort_transaction()
        assert bytes(server.read_page("f", pid)) == b"1" * PAGE_SIZE
        server.close()

    def test_crash_recovery_rolls_back(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pid = server.allocate_page("f")
        server.write_page("f", pid, b"1" * PAGE_SIZE)
        server.begin_transaction()
        server.write_page("f", pid, b"2" * PAGE_SIZE)
        server.close()  # crash: journal left on disk
        assert os.path.exists(os.path.join(str(tmp_path), "undo.journal"))
        recovered = StorageServer(str(tmp_path))
        assert bytes(recovered.read_page("f", pid)) == b"1" * PAGE_SIZE
        assert not os.path.exists(os.path.join(str(tmp_path), "undo.journal"))
        recovered.close()

    def test_nested_transaction_rejected(self, tmp_path):
        server = StorageServer(str(tmp_path))
        server.begin_transaction()
        with pytest.raises(StorageError):
            server.begin_transaction()
        server.commit_transaction()
        server.close()

    def test_commit_without_begin_rejected(self, tmp_path):
        server = StorageServer(str(tmp_path))
        with pytest.raises(StorageError):
            server.commit_transaction()
        server.close()
