"""Fault injection at the server's I/O boundaries (the ``net.*`` points)
plus server-side storage failures observed through the wire.

The contract under test: any single injected fault kills at most the one
connection it hits — the dropped client gets a clean
:class:`~repro.errors.ProtocolError` (never a hang, never garbage), its
cursors are freed, and the server keeps serving everyone else.
"""

import time

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import ProtocolError, StorageError
from repro.faults import FaultInjector, SimulatedCrash
from repro.server import CoralServer

TC_PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4).

    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""

EXPECTED_FROM_1 = [(1, 2), (1, 3), (1, 4)]


def _tc_server(faults=None):
    session = Session()
    session.consult_string(TC_PROGRAM)
    return CoralServer(session, port=0, faults=faults)


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestNetFaults:
    def test_write_failure_mid_fetch_drops_only_that_client(self):
        # response writes on one connection: #1 HELLO, #2 QUERY, #3 FETCH —
        # the injected failure hits exactly the first FETCH response
        faults = FaultInjector().fail_at("net.write", hit=3)
        with _tc_server(faults) as server:
            db = RemoteSession(*server.address, batch_size=2)
            result = db.query("path(1, Y)")
            with pytest.raises(ProtocolError, match="closed the connection"):
                result.get_next()
            # the dead connection's cursor was freed by the handler
            assert _wait_until(lambda: server.open_cursors() == 0)
            # the server itself is fine: a fresh client gets full answers
            with RemoteSession(*server.address) as db2:
                assert sorted(db2.query("path(1, Y)").tuples()) == EXPECTED_FROM_1
            assert server.metrics.counter(
                "server.errors", "", ("kind",)
            ).value("write") == 1

    def test_read_failure_mid_stream_frees_cursors(self):
        # request reads on one connection: #1 HELLO, #2 QUERY, #3 FETCH
        faults = FaultInjector().fail_at("net.read", hit=3)
        with _tc_server(faults) as server:
            db = RemoteSession(*server.address, batch_size=2)
            result = db.query("path(1, Y)")
            with pytest.raises(ProtocolError, match="closed the connection"):
                result.all()
            assert _wait_until(lambda: server.open_cursors() == 0)
            with RemoteSession(*server.address) as db2:
                assert sorted(db2.query("path(1, Y)").tuples()) == EXPECTED_FROM_1

    def test_accept_failure_refuses_one_connection_only(self):
        faults = FaultInjector().fail_at("net.accept", hit=1)
        with _tc_server(faults) as server:
            with pytest.raises(ProtocolError):
                RemoteSession(*server.address)
            # the schedule was one-shot: the very next connection succeeds
            with RemoteSession(*server.address) as db:
                assert sorted(db.query("path(1, Y)").tuples()) == EXPECTED_FROM_1
            assert _wait_until(
                lambda: server.stats()["connections"]["active"] == 0
            )

    def test_simulated_crash_in_handler_does_not_kill_the_server(self):
        """A SimulatedCrash must never be swallowed as a CoralError — it
        propagates out of the handler thread (dropping that connection)
        while the accept loop keeps serving."""
        faults = FaultInjector().crash_at("net.read", hit=2)
        with _tc_server(faults) as server:
            db = RemoteSession(*server.address)
            with pytest.raises(ProtocolError, match="closed the connection"):
                db.query("path(1, Y)")  # read #2: the injected crash
            assert _wait_until(
                lambda: server.metrics.counter(
                    "server.errors", "", ("kind",)
                ).value("unhandled") == 1
            )
            with RemoteSession(*server.address) as db2:
                assert sorted(db2.query("path(1, Y)").tuples()) == EXPECTED_FROM_1


class TestServerSideStorageFaults:
    def test_failed_write_surfaces_as_storage_error_and_server_survives(
        self, tmp_path
    ):
        """An I/O failure during a remote INSERT reaches the client as a
        StorageError; the connection and the server both stay up, and the
        retried insert (the schedule is one-shot) succeeds."""
        storage_faults = FaultInjector()
        session = Session()
        session.open_storage(str(tmp_path), faults=storage_faults)
        session.persistent_relation("kv", 2)
        storage_faults.fail_at(
            "disk.allocate",
            hit=storage_faults.counts.get("disk.allocate", 0) + 1,
        )
        with CoralServer(session, port=0) as server:
            with RemoteSession(*server.address) as db:
                with pytest.raises(StorageError):
                    db.insert("kv", 1, "a")
                # same connection, same server: the retry goes through
                assert db.insert("kv", 1, "a") is True
                assert sorted(db.query("kv(K, V)").tuples()) == [(1, "a")]
            assert _wait_until(
                lambda: server.stats()["connections"]["active"] == 0
            )
        session.close()
