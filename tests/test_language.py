"""Unit tests for the lexer and parser."""

import pytest

from repro.errors import ParseError
from repro.language import (
    Aggregation,
    Literal,
    parse_module,
    parse_program,
    parse_query,
    tokenize,
)
from repro.terms import Atom, Double, Functor, Int, NIL, Str, Var, list_elements


class TestLexer:
    def test_basic_clause(self):
        kinds = [t.kind for t in tokenize("path(X, Y) :- edge(X, Y).")]
        assert kinds == [
            "ident", "punct", "variable", "punct", "variable", "punct",
            "punct", "ident", "punct", "variable", "punct", "variable",
            "punct", "end", "eof",
        ]

    def test_numbers(self):
        tokens = tokenize("f(1, 2.5, 3, 1e3).")
        texts = [(t.kind, t.text) for t in tokens if t.kind in ("integer", "float")]
        assert texts == [
            ("integer", "1"), ("float", "2.5"), ("integer", "3"), ("float", "1e3")
        ]

    def test_clause_dot_vs_decimal_point(self):
        tokens = tokenize("f(3.5).")
        assert [t.kind for t in tokens] == ["ident", "punct", "float", "punct", "end", "eof"]

    def test_line_comment(self):
        tokens = tokenize("p(1). % comment\nq(2).")
        assert sum(1 for t in tokens if t.kind == "end") == 2

    def test_block_comment(self):
        tokens = tokenize("p(1). /* multi\nline */ q(2).")
        assert sum(1 for t in tokens if t.kind == "ident") == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("p(1). /* never closed")

    def test_string_with_escapes(self):
        tokens = tokenize('p("a\\"b\\n").')
        assert tokens[2].text == 'a"b\n'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('p("oops).')

    def test_operators_greedy(self):
        texts = [t.text for t in tokenize("X :- Y <= Z >= W == V.") if t.kind == "punct"]
        assert texts == [":-", "<=", ">=", "=="]

    def test_position_tracking(self):
        tokens = tokenize("p(1).\nq(2).")
        q_token = [t for t in tokens if t.text == "q"][0]
        assert q_token.line == 2 and q_token.column == 1


class TestParserClauses:
    def test_fact(self):
        program = parse_program("edge(1, 2).")
        assert len(program.facts) == 1
        fact = program.facts[0]
        assert fact.head.pred == "edge"
        assert fact.head.args == (Int(1), Int(2))

    def test_fact_with_atoms_strings(self):
        program = parse_program('person(john, "Main Street", 3.5).')
        args = program.facts[0].head.args
        assert args == (Atom("john"), Str("Main Street"), Double(3.5))

    def test_non_ground_fact(self):
        """CORAL allows facts containing (universally quantified) variables."""
        program = parse_program("always(X).")
        assert isinstance(program.facts[0].head.args[0], Var)

    def test_rule_inside_module(self):
        module = parse_module(
            """
            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        assert module.name == "tc"
        assert len(module.rules) == 2
        assert module.exports[0].pred == "path"
        assert module.exports[0].forms == ("bf",)

    def test_variable_scoping_within_clause(self):
        module = parse_module(
            "module m. p(X, Y) :- q(X, Z), r(Z, Y). end_module."
        )
        rule = module.rules[0]
        z_in_q = rule.body[0].args[1]
        z_in_r = rule.body[1].args[0]
        assert z_in_q is z_in_r
        assert rule.head.args[0] is rule.body[0].args[0]

    def test_variables_fresh_across_clauses(self):
        module = parse_module("module m. p(X) :- q(X). r(X) :- s(X). end_module.")
        assert module.rules[0].head.args[0] is not module.rules[1].head.args[0]

    def test_underscore_always_fresh(self):
        module = parse_module("module m. p(_, _) :- q(_). end_module.")
        rule = module.rules[0]
        assert rule.head.args[0] is not rule.head.args[1]

    def test_negated_literal(self):
        module = parse_module("module m. p(X) :- q(X), not r(X). end_module.")
        assert module.rules[0].body[1].negated

    def test_comparison_literals(self):
        module = parse_module("module m. p(X) :- q(X), X < 5, X != 2. end_module.")
        body = module.rules[0].body
        assert body[1].pred == "<"
        assert body[2].pred == "!="

    def test_prolog_spelling_of_lte(self):
        module = parse_module("module m. p(X) :- q(X), X =< 5. end_module.")
        assert module.rules[0].body[1].pred == "<="

    def test_arithmetic_expression(self):
        module = parse_module("module m. p(C1) :- q(C, EC), C1 = C + EC * 2. end_module.")
        assign = module.rules[0].body[1]
        assert assign.pred == "="
        expr = assign.args[1]
        assert isinstance(expr, Functor) and expr.name == "+"
        assert isinstance(expr.args[1], Functor) and expr.args[1].name == "*"

    def test_negative_number_literal(self):
        program = parse_program("temp(-5).")
        assert program.facts[0].head.args[0] == Int(-5)

    def test_lists(self):
        program = parse_program("l([1, 2 | X]).")
        term = program.facts[0].head.args[0]
        assert isinstance(term, Functor) and term.name == "."

    def test_empty_list(self):
        program = parse_program("l([]).")
        assert program.facts[0].head.args[0] == NIL

    def test_proper_list_round_trip(self):
        program = parse_program("l([1, 2, 3]).")
        elements = list_elements(program.facts[0].head.args[0])
        assert elements == [Int(1), Int(2), Int(3)]

    def test_zero_arity_predicate(self):
        module = parse_module("module m. go :- p(1). end_module.")
        assert module.rules[0].head.pred == "go"
        assert module.rules[0].head.args == ()


class TestParserAggregation:
    def test_head_aggregation_figure_3(self):
        module = parse_module(
            "module m. s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C). end_module."
        )
        rule = module.rules[0]
        assert len(rule.head_aggregates) == 1
        position, aggregation = rule.head_aggregates[0]
        assert position == 2
        assert aggregation.function == "min"
        assert isinstance(aggregation.expr, Var)

    def test_count_aggregation(self):
        module = parse_module(
            "module m. emps(D, count(<E>)) :- works(E, D). end_module."
        )
        assert module.rules[0].head_aggregates[0][1].function == "count"

    def test_fact_with_aggregation_rejected(self):
        with pytest.raises(ParseError):
            parse_module("module m. p(min(<C>)). end_module.")


class TestParserAnnotations:
    def test_aggregate_selection_figure_3(self):
        module = parse_module(
            """
            module s_p.
            @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
            p(X, Y) :- e(X, Y).
            end_module.
            """
        )
        selection = module.aggregate_selections[0]
        assert selection.pred == "p"
        assert selection.arity == 4
        assert [v.name for v in selection.group_vars] == ["X", "Y"]
        assert selection.function == "min"
        assert isinstance(selection.target, Var)

    def test_aggregate_selection_any(self):
        module = parse_module(
            """
            module m.
            @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
            p(X, Y) :- e(X, Y).
            end_module.
            """
        )
        assert module.aggregate_selections[0].function == "any"

    def test_make_index_paper_example(self):
        module = parse_module(
            """
            module m.
            @make_index emp(Name, addr(Street, City)) (Name, City).
            p(X) :- emp(X, A).
            end_module.
            """
        )
        annotation = module.index_annotations[0]
        assert annotation.pred == "emp"
        assert annotation.arity == 2
        assert len(annotation.key_terms) == 2

    def test_module_flags(self):
        module = parse_module(
            """
            module m.
            @pipelining.
            @save_module.
            @multiset p.
            p(X) :- q(X).
            end_module.
            """
        )
        assert module.has_flag("pipelining")
        assert module.has_flag("save_module")
        assert module.flag("multiset").argument == "p"

    def test_unknown_annotation_rejected(self):
        with pytest.raises(ParseError):
            parse_module("module m. @frobnicate. p(X) :- q(X). end_module.")


class TestParserQueries:
    def test_prefix_query(self):
        program = parse_program("?- path(1, X).")
        assert program.queries[0].literal.pred == "path"

    def test_suffix_query(self):
        program = parse_program("path(1, X)?")
        assert program.queries[0].literal.pred == "path"

    def test_parse_query_helper(self):
        assert parse_query("path(1, X)").literal.pred == "path"
        assert parse_query("?- path(1, X).").literal.args[0] == Int(1)


class TestParserErrors:
    def test_missing_end_module(self):
        with pytest.raises(ParseError):
            parse_program("module m. p(X) :- q(X).")

    def test_rule_outside_module_rejected(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- q(X).")

    def test_bad_query_form(self):
        with pytest.raises(ParseError):
            parse_module("module m. export p(bx). p(1). end_module.")

    def test_inconsistent_query_form_lengths(self):
        with pytest.raises(ParseError):
            parse_module("module m. export p(bf, b). p(1, 2). end_module.")

    def test_error_carries_position(self):
        try:
            parse_program("edge(1,\n  &2).")
        except ParseError as error:
            assert error.line == 2
        else:
            pytest.fail("expected ParseError")

    def test_figure_3_shortest_path_parses(self):
        """The complete program from the paper's Figure 3."""
        module = parse_module(
            """
            module s_p.
            export s_p(bfff, ffff).
            @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
            s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
            s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
            p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                               append([edge(Z, Y)], P, P1), C1 = C + EC.
            p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
            end_module.
            """
        )
        assert module.name == "s_p"
        assert len(module.rules) == 4
        assert module.exports[0].forms == ("bfff", "ffff")
