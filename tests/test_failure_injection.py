"""Failure injection: every documented restriction and error path should
fail loudly and precisely, not corrupt state or answer wrongly."""

import os

import pytest

from repro import Session
from repro.errors import (
    CoralError,
    EvaluationError,
    ModuleError,
    ParseError,
    StorageError,
    StratificationError,
)
from repro.storage import BufferPool, PersistentRelation, StorageServer
from repro.storage.pages import PAGE_SIZE
from repro.relations import Tuple
from repro.terms import Int, Str


class TestLanguageErrors:
    def test_parse_error_has_position(self):
        session = Session()
        with pytest.raises(ParseError) as info:
            session.consult_string("module m.\np(X) :- q(X,.\nend_module.")
        assert info.value.line == 2

    def test_unterminated_module(self):
        session = Session()
        with pytest.raises(ParseError):
            session.consult_string("module m. p(X) :- q(X).")

    def test_rule_at_top_level_rejected(self):
        session = Session()
        with pytest.raises(ParseError):
            session.consult_string("p(X) :- q(X).")

    def test_double_negation_rejected(self):
        session = Session()
        with pytest.raises(ParseError):
            session.consult_string(
                "module m. p(X) :- not not q(X). end_module."
            )


class TestStratificationErrors:
    def test_unstratified_negation_without_ordered_search(self):
        session = Session()
        session.consult_string(
            """
            module game.
            export win(b).
            win(X) :- move(X, Y), not win(Y).
            end_module.
            move(a, b).
            """
        )
        # the optimizer falls back to ordered search automatically, which
        # IS able to answer this (acyclic move graph) — so this succeeds:
        assert len(session.query("win(a)").all()) == 1

    def test_negative_cycle_detected_at_runtime(self):
        session = Session()
        session.consult_string(
            """
            module game.
            export win(b).
            @ordered_search.
            win(X) :- move(X, Y), not win(Y).
            end_module.
            move(a, b). move(b, a).
            """
        )
        with pytest.raises(StratificationError):
            session.query("win(a)").all()


class TestModuleErrors:
    def test_insert_into_derived_relation(self):
        session = Session()
        session.consult_string(
            "module m. export p(f). p(X) :- q(X). end_module."
        )
        derived = session.ctx.resolve("p", 1)
        with pytest.raises(ModuleError):
            derived.insert(Tuple((Int(1),)))

    def test_duplicate_module_name(self):
        session = Session()
        session.consult_string("module m. export p(f). p(X) :- q(X). end_module.")
        with pytest.raises(ModuleError):
            session.consult_string(
                "module m. export r(f). r(X) :- q(X). end_module."
            )

    def test_unload_unknown_module(self):
        session = Session()
        with pytest.raises(ModuleError):
            session.modules.unload("ghost")

    def test_pipelined_module_with_aggregation_rejected(self):
        session = Session()
        with pytest.raises(ModuleError):
            session.consult_string(
                """
                module m.
                export total(f).
                @pipelining.
                total(sum(<V>)) :- item(V).
                end_module.
                """
            )


class TestEvaluationErrors:
    def test_unbound_arithmetic(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export bad(f).
            bad(Y) :- Y = X + 1, thing(X).
            end_module.
            thing(1).
            """
        )
        with pytest.raises(EvaluationError):
            session.query("bad(Y)").all()

    def test_division_by_zero(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export bad(f).
            bad(Y) :- thing(X), Y = X / 0.
            end_module.
            thing(1).
            """
        )
        with pytest.raises(EvaluationError):
            session.query("bad(Y)").all()

    def test_pipelined_left_recursion_depth_bounded(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export p(bf).
            @pipelining.
            p(X, Y) :- p(X, Z), edge(Z, Y).
            p(X, Y) :- edge(X, Y).
            end_module.
            edge(1, 2).
            """
        )
        with pytest.raises(EvaluationError):
            session.query("p(1, Y)").all()


class TestStorageErrors:
    def test_record_larger_than_page(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=8)
        relation = PersistentRelation("blob", 1, pool)
        with pytest.raises(StorageError):
            relation.insert(Tuple((Str("x" * PAGE_SIZE),)))
        server.close()

    def test_torn_page_file_detected(self, tmp_path):
        path = tmp_path / "torn.pages"
        path.write_bytes(b"x" * (PAGE_SIZE + 17))
        from repro.storage.file import DiskFile

        with pytest.raises(StorageError):
            DiskFile(str(path))

    def test_non_btree_file_rejected(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=8)
        pid = server.allocate_page("junk.idx")
        server.write_page("junk.idx", pid, b"\xff" * PAGE_SIZE)
        server.allocate_page("junk.idx")
        from repro.storage.btree import BTree

        with pytest.raises(StorageError):
            BTree(pool, "junk.idx").search([Int(1)])
        server.close()

    def test_truncated_journal_recovers_prefix(self, tmp_path):
        """A crash can tear the journal mid-entry; recovery must apply the
        complete prefix and ignore the torn tail."""
        server = StorageServer(str(tmp_path))
        pid = server.allocate_page("f")
        server.write_page("f", pid, b"1" * PAGE_SIZE)
        server.begin_transaction()
        server.write_page("f", pid, b"2" * PAGE_SIZE)
        server.close()  # journal left behind
        journal = os.path.join(str(tmp_path), "undo.journal")
        with open(journal, "ab") as handle:
            handle.write(b"\x00\x05\x00\x00\x00\x07torn")  # incomplete entry
        recovered = StorageServer(str(tmp_path))
        assert bytes(recovered.read_page("f", pid)) == b"1" * PAGE_SIZE
        recovered.close()

    def test_session_double_open_storage(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        with pytest.raises(CoralError):
            session.open_storage(str(tmp_path))
        session.close()

    def test_persistent_name_clash_with_memory_relation(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        session.insert("clash", 1)
        with pytest.raises(CoralError):
            session.persistent_relation("clash", 1)
        session.close()


class TestQueryErrors:
    def test_missing_query_variable(self):
        session = Session()
        session.insert("p", 1)
        answer = session.query("p(X)").all()[0]
        with pytest.raises(KeyError):
            answer["Z"]

    def test_delete_from_unknown_relation(self):
        session = Session()
        with pytest.raises(EvaluationError):
            session.delete("nothing", 1)
