"""Property tests for the push compiler and term interning (ISSUE 9).

Two families:

* **agreement** — hypothesis-generated ground-Datalog programs (biased to
  the compilable class, with recursion, comparisons, arithmetic and
  negation sprinkled in) must produce identical answers under the
  interpreter and the push backend, both as a module flag and as the
  session-wide default;
* **interning** — :class:`repro.terms.hashcons.InternTable` must agree
  *exactly* with relation-level duplicate elimination: two primitives get
  the same dense id iff a :class:`HashRelation` would treat their tuples
  as duplicates.  That pins the tricky cases — ``-0.0``/``0.0`` collapse,
  ``Int(0)`` vs ``Double(0.0)``, ``Str("a")`` vs ``Atom("a")``, BigNum
  vs Int, and NaN's same-object/distinct-object dict semantics.

The fallback-visibility tests (satellite: silent fallback is a bug
magnet) assert that a known-uncompilable rule reports its reason through
``CompileStats``, ``EXPLAIN``, and the ``compile.fallbacks`` counter.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.relations import HashRelation, Tuple
from repro.terms import Atom, BigNum, Double, Int, Str
from repro.terms.hashcons import InternTable

# ---------------------------------------------------------------------------
# interning: dense ids must match relation dedup exactly
# ---------------------------------------------------------------------------

_PRIMITIVES = st.one_of(
    st.integers(min_value=-(10**20), max_value=10**20).map(Int),
    st.floats(allow_nan=True, allow_infinity=True).map(Double),
    st.text(max_size=5).map(Str),
    st.text(alphabet="abcxyz", min_size=1, max_size=4).map(Atom),
    st.integers(min_value=10**15, max_value=10**25).map(BigNum),
)


@given(_PRIMITIVES, _PRIMITIVES)
@settings(max_examples=300, deadline=None)
def test_interning_matches_relation_dedup(x, y):
    table = InternTable()
    same_id = table.intern(x) == table.intern(y)
    relation = HashRelation("t", 1)
    assert relation.insert(Tuple((x,)))
    duplicate = not relation.insert(Tuple((y,)))
    assert same_id == duplicate, (
        f"intern says same={same_id} but relation says duplicate={duplicate} "
        f"for {x!r} vs {y!r}"
    )


@given(_PRIMITIVES)
@settings(max_examples=200, deadline=None)
def test_interning_round_trips(x):
    table = InternTable()
    ident = table.intern(x)
    back = table.arg_for(ident)
    assert back.ground_key() == x.ground_key()
    # re-interning the recovered arg lands on the same id
    assert table.intern(back) == ident


def test_interning_edge_cases():
    table = InternTable()
    # -0.0 and 0.0 collapse (Double.__eq__ does too)
    assert table.intern(Double(-0.0)) == table.intern(Double(0.0))
    # Int(0) and Double(0.0) stay distinct (different kinds)
    assert table.intern(Int(0)) != table.intern(Double(0.0))
    # Str("a") and Atom("a") stay distinct
    assert table.intern(Str("a")) != table.intern(Atom("a"))
    # BigNum and Int with the same value collapse (both kind "int")
    assert table.intern(BigNum(10**30)) == table.intern(Int(10**30))
    # NaN: the same float object interns to one id (dict identity
    # semantics), two distinct NaN objects to two — exactly like relation
    # dedup, which the matching property test pins down
    nan = float("nan")
    assert table.intern(Double(nan)) == table.intern(Double(nan))
    assert table.intern(Double(float("nan"))) != table.intern(
        Double(float("nan"))
    )
    # computed-number interning agrees with Arg interning
    assert table.intern_num(7) == table.intern(Int(7))
    assert table.intern_num(2.5) == table.intern(Double(2.5))
    assert table.intern_num(7) != table.intern_num(7.0)


# ---------------------------------------------------------------------------
# agreement: push vs interpreted on random ground Datalog
# ---------------------------------------------------------------------------


@st.composite
def _datalog_case(draw):
    domain = list(range(1, draw(st.integers(min_value=3, max_value=6)) + 1))
    pair = st.tuples(st.sampled_from(domain), st.sampled_from(domain))
    facts = {
        pred: draw(st.sets(pair, min_size=2, max_size=8))
        for pred in ("b0", "b1")
    }
    n_derived = draw(st.integers(min_value=1, max_value=3))
    rules = []
    for level in range(n_derived):
        pred = f"d{level}"
        sources = ["b0", "b1"] + [f"d{i}" for i in range(level)]
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            shape = draw(
                st.sampled_from(
                    ["copy", "swap", "chain", "guard", "incr", "recursive",
                     "negation"]
                )
            )
            src = draw(st.sampled_from(sources))
            src2 = draw(st.sampled_from(sources))
            if shape == "copy":
                body = f"{src}(X, Y)"
            elif shape == "swap":
                body = f"{src}(Y, X)"
            elif shape == "chain":
                body = f"{src}(X, Z), {src2}(Z, Y)"
            elif shape == "guard":
                body = f"{src}(X, Y), X < Y"
            elif shape == "incr":
                body = f"{src}(X, Z), Y = Z + 1"
            elif shape == "negation":
                # stratified, safe: strictly-lower sources, variables bound
                body = f"{src}(X, Y), not {src2}(X, Y)"
            else:  # recursive
                body = f"{src}(X, Z), {pred}(Z, Y)"
            rules.append(f"{pred}(X, Y) :- {body}.")
    bound_pred = draw(st.integers(min_value=0, max_value=n_derived - 1))
    bound_const = draw(st.sampled_from(domain))
    queries = [
        f"d{n_derived - 1}(X, Y)",
        f"d{bound_pred}({bound_const}, Y)",
    ]
    return facts, rules, queries


def _render(facts, rules, flags):
    lines = []
    for pred, tuples in sorted(facts.items()):
        for a, b in sorted(tuples):
            lines.append(f"{pred}({a}, {b}).")
    lines.append("module gen.")
    if flags:
        lines.append(flags)
    n_derived = len({rule.split("(")[0] for rule in rules})
    for level in range(n_derived):
        lines.append(f"export d{level}(ff, bf).")
    lines.extend(rules)
    lines.append("end_module.")
    return "\n".join(lines) + "\n"


def _answers(program, queries, **session_kwargs):
    session = Session(**session_kwargs)
    session.consult_string(program)
    return {q: sorted(set(session.query(q).tuples())) for q in queries}


@given(_datalog_case())
@settings(max_examples=30, deadline=None)
def test_push_agrees_with_interpreter(case):
    facts, rules, queries = case
    baseline = _answers(_render(facts, rules, ""), queries)
    flagged = _answers(_render(facts, rules, "@compiled(push)."), queries)
    assert flagged == baseline
    session_default = _answers(_render(facts, rules, ""), queries, compiled="push")
    assert session_default == baseline


# ---------------------------------------------------------------------------
# fallback visibility: uncompilable rules must say why
# ---------------------------------------------------------------------------

_FALLBACK_PROGRAM = """
b(1, 2). b(2, 3). b(3, 1).
module fb.
@compiled(push).
export d(ff).
d(X, Y) :- b(X, Y).
d(X, Y) :- b(Y, X), not b(X, Y).
end_module.
"""


def test_fallback_reason_in_stats_and_explain():
    session = Session()
    session.consult_string(_FALLBACK_PROGRAM)
    baseline = Session()
    baseline.consult_string(_FALLBACK_PROGRAM.replace("@compiled(push).", ""))
    assert sorted(set(session.query("d(X, Y)").tuples())) == sorted(
        set(baseline.query("d(X, Y)").tuples())
    )

    from repro.compilemod import compile_report

    form = session.modules.compiled_form("fb", "d", "ff")
    report = compile_report(form, session.ctx.is_builtin)
    assert report.backend == "push"
    assert report.rules_compiled >= 1
    assert report.rules_interpreted >= 1
    assert any("negation" in reason for reason in report.fallbacks), (
        report.fallbacks
    )

    text = session.explain("d(X, Y)")
    assert "compiled to Python (push)" in text
    assert "fallback" in text and "negation" in text


def test_fallback_counter_under_profiler():
    session = Session()
    session.consult_string(_FALLBACK_PROGRAM)
    with session.profile(trace=False) as prof:
        session.query("d(X, Y)").all()
    registry = prof.profile.registry
    assert "compile.fallbacks" in registry
    counter = registry.counter(
        "compile.fallbacks",
        "rules interpreted under a compiled backend, by reason",
        ("reason",),
    )
    collected = counter.collect()
    assert any("negation" in labels[0] for labels in collected), collected
    assert sum(collected.values()) >= 1


def test_module_level_fallback_reports_save_module():
    program = _FALLBACK_PROGRAM.replace(
        "@compiled(push).", "@compiled(push).\n@save_module."
    )
    session = Session()
    session.consult_string(program)
    answers = sorted(set(session.query("d(X, Y)").tuples()))
    assert answers  # interpreted evaluation still works

    from repro.compilemod import compile_report

    form = session.modules.compiled_form("fb", "d", "ff")
    report = compile_report(form, session.ctx.is_builtin)
    assert report.rules_compiled == 0
    assert any("save_module" in reason for reason in report.fallbacks)


def test_closure_backend_also_reports_fallbacks():
    program = _FALLBACK_PROGRAM.replace("@compiled(push).", "@compiled.")
    session = Session()
    session.consult_string(program)
    session.query("d(X, Y)").all()

    from repro.compilemod import compile_report

    form = session.modules.compiled_form("fb", "d", "ff")
    report = compile_report(form, session.ctx.is_builtin)
    assert report.backend == "closure"
    assert any("negation" in reason for reason in report.fallbacks)


def test_unknown_backend_rejected():
    session = Session()
    session.consult_string(
        "b(1, 2).\nmodule bad.\n@compiled(jit).\nexport d(ff).\n"
        "d(X, Y) :- b(X, Y).\nend_module.\n"
    )
    with pytest.raises(Exception, match="unknown compiled backend"):
        session.query("d(X, Y)").all()


def test_push_handles_floats_and_arithmetic():
    program = """
w(1, 2). w(2, 3).
module fl.
@compiled(push).
export c(ff).
c(X, H) :- w(X, Y), H = Y / 2.
end_module.
"""
    session = Session()
    session.consult_string(program)
    baseline = Session()
    baseline.consult_string(program.replace("@compiled(push).", ""))
    got = sorted(set(session.query("c(X, H)").tuples()))
    expected = sorted(set(baseline.query("c(X, H)").tuples()))
    assert got == expected
    assert any(isinstance(value, float) for _, value in got)
