"""Unit tests for unification, matching, subsumption, and bindenvs."""

import pytest

from repro.terms import (
    Atom,
    BindEnv,
    Functor,
    Int,
    Trail,
    Var,
    canonicalize_term,
    deref,
    make_list,
    match,
    rename_term,
    resolve,
    subsumes,
    term_variables,
    unify,
    variant,
)
from repro.terms.unify import subsumes_all


def f(*args):
    return Functor("f", args)


class TestBindEnv:
    def test_figure_2_chained_environments(self):
        """Reproduce the paper's Figure 2: f(X, 10, Y) with X=25, Y=Z in one
        bindenv and Z=50 in another."""
        x, y, z = Var("X"), Var("Y"), Var("Z")
        outer = BindEnv()
        inner = BindEnv()
        inner.bind(z, Int(50), None)
        outer.bind(x, Int(25), None)
        outer.bind(y, z, inner)
        term = Functor("f", (x, Int(10), y))
        assert resolve(term, outer) == Functor("f", (Int(25), Int(10), Int(50)))

    def test_deref_follows_chains(self):
        x, y = Var("X"), Var("Y")
        env = BindEnv()
        env.bind(x, y, env)
        env.bind(y, Atom("a"), None)
        term, term_env = deref(x, env)
        assert term == Atom("a")

    def test_double_bind_raises(self):
        x = Var("X")
        env = BindEnv()
        env.bind(x, Int(1), None)
        with pytest.raises(ValueError):
            env.bind(x, Int(2), None)

    def test_trail_undo(self):
        x, y = Var("X"), Var("Y")
        env = BindEnv()
        trail = Trail()
        mark = trail.mark()
        env.bind(x, Int(1), None, trail)
        env.bind(y, Int(2), None, trail)
        assert x in env and y in env
        trail.undo_to(mark)
        assert x not in env and y not in env

    def test_partial_undo(self):
        x, y = Var("X"), Var("Y")
        env = BindEnv()
        trail = Trail()
        env.bind(x, Int(1), None, trail)
        mark = trail.mark()
        env.bind(y, Int(2), None, trail)
        trail.undo_to(mark)
        assert x in env and y not in env


class TestUnify:
    def _unify(self, left, right, env=None):
        env = env or BindEnv()
        trail = Trail()
        ok = unify(left, env, right, env, trail)
        if not ok:
            trail.undo_to(0)
        return ok, env

    def test_constants_unify_with_equal_constants(self):
        ok, _ = self._unify(Int(1), Int(1))
        assert ok
        ok, _ = self._unify(Int(1), Int(2))
        assert not ok

    def test_var_binds_to_constant(self):
        x = Var("X")
        ok, env = self._unify(x, Int(7))
        assert ok
        assert resolve(x, env) == Int(7)

    def test_var_var_aliasing(self):
        x, y = Var("X"), Var("Y")
        env = BindEnv()
        trail = Trail()
        assert unify(x, env, y, env, trail)
        assert unify(y, env, Int(3), env, trail)
        assert resolve(x, env) == Int(3)

    def test_functor_unification_binds_subterms(self):
        x, y = Var("X"), Var("Y")
        ok, env = self._unify(f(x, Int(2)), f(Int(1), y))
        assert ok
        assert resolve(x, env) == Int(1)
        assert resolve(y, env) == Int(2)

    def test_functor_name_mismatch(self):
        ok, _ = self._unify(f(Int(1)), Functor("g", (Int(1),)))
        assert not ok

    def test_functor_arity_mismatch(self):
        ok, _ = self._unify(f(Int(1)), f(Int(1), Int(2)))
        assert not ok

    def test_ground_fast_path_equal(self):
        big = make_list([Int(i) for i in range(100)])
        ok, _ = self._unify(big, make_list([Int(i) for i in range(100)]))
        assert ok

    def test_ground_fast_path_unequal(self):
        left = make_list([Int(i) for i in range(100)])
        right = make_list([Int(i) for i in range(99)] + [Int(999)])
        ok, _ = self._unify(left, right)
        assert not ok

    def test_repeated_variable(self):
        x = Var("X")
        ok, env = self._unify(f(x, x), f(Int(1), Int(1)))
        assert ok
        ok2, _ = self._unify(f(x, x), f(Int(1), Int(2)), env=BindEnv())
        assert not ok2

    def test_unification_across_two_environments(self):
        x = Var("X")
        y = Var("Y")
        left_env, right_env = BindEnv(), BindEnv()
        trail = Trail()
        assert unify(f(x), left_env, f(y), right_env, trail)
        assert unify(y, right_env, Int(9), right_env, trail)
        assert resolve(x, left_env) == Int(9)

    def test_occurs_check(self):
        x = Var("X")
        env = BindEnv()
        trail = Trail()
        assert not unify(x, env, f(x), env, trail, occurs_check=True)

    def test_without_occurs_check_cyclic_binding_allowed(self):
        x = Var("X")
        env = BindEnv()
        trail = Trail()
        assert unify(x, env, f(x), env, trail, occurs_check=False)


class TestMatch:
    def test_pattern_var_binds(self):
        x = Var("X")
        env = BindEnv()
        trail = Trail()
        assert match(f(x), env, f(Int(5)), None, trail)
        assert resolve(x, env) == Int(5)

    def test_instance_var_does_not_bind(self):
        y = Var("Y")
        env = BindEnv()
        trail = Trail()
        assert not match(f(Int(5)), env, f(y), None, trail)

    def test_pattern_var_matches_instance_var(self):
        x, y = Var("X"), Var("Y")
        env = BindEnv()
        trail = Trail()
        assert match(x, env, y, None, trail)
        term, _ = deref(x, env)
        assert term is y


class TestSubsumption:
    def test_ground_subsumes_itself(self):
        assert subsumes(f(Int(1)), f(Int(1)))

    def test_general_subsumes_instance(self):
        x = Var("X")
        assert subsumes(f(x, Int(2)), f(Int(1), Int(2)))

    def test_instance_does_not_subsume_general(self):
        x = Var("X")
        assert not subsumes(f(Int(1), Int(2)), f(x, Int(2)))

    def test_repeated_var_requires_equal_subterms(self):
        x = Var("X")
        y, z = Var("Y"), Var("Z")
        assert subsumes(f(x, x), f(Int(1), Int(1)))
        assert not subsumes(f(x, x), f(Int(1), Int(2)))
        assert not subsumes(f(x, x), f(y, z))
        assert subsumes(f(x, x), f(y, y))

    def test_var_subsumes_nonground(self):
        x, y = Var("X"), Var("Y")
        assert subsumes(x, f(y))

    def test_subsumes_all_shares_substitution(self):
        x = Var("X")
        assert subsumes_all([x, x], [Int(1), Int(1)])
        assert not subsumes_all([x, x], [Int(1), Int(2)])

    def test_subsumes_all_arity_mismatch(self):
        assert not subsumes_all([Var("X")], [Int(1), Int(2)])


class TestVariantAndRenaming:
    def test_variant_true(self):
        x, y = Var("X"), Var("Y")
        assert variant(f(x, y, x), f(y, x, y))

    def test_variant_false_when_pattern_differs(self):
        x, y = Var("X"), Var("Y")
        assert not variant(f(x, x), f(x, y))

    def test_rename_produces_fresh_consistent_vars(self):
        x = Var("X")
        term = f(x, x)
        renamed = rename_term(term, {})
        assert variant(term, renamed)
        renamed_vars = term_variables([renamed])
        assert len(renamed_vars) == 1
        assert renamed_vars[0].vid != x.vid

    def test_canonicalize_is_deterministic(self):
        x, y = Var("X"), Var("Y")
        a = canonicalize_term(f(x, y), {})
        b = canonicalize_term(f(Var("P"), Var("Q")), {})
        assert a == b

    def test_term_variables_order_and_dedup(self):
        x, y = Var("X"), Var("Y")
        assert term_variables([f(x, y, x)]) == [x, y]
