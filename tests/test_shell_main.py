"""End-to-end test of the interactive shell process (the coral-shell entry
point) driven through stdin, plus the @check command."""

import subprocess
import sys

import pytest

from repro.shell import Shell

SCRIPT = """\
edge(1, 2).
edge(2, 3).
module tc.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
path(1, Y)?
@stats.
@quit.
"""


class TestShellProcess:
    def test_full_session_through_stdin(self):
        result = subprocess.run(
            [sys.executable, "-c", "from repro.shell.repl import main; main([])"],
            input=SCRIPT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "Y = 2" in result.stdout
        assert "Y = 3" in result.stdout
        assert "2 answer(s)." in result.stdout
        assert "inferences" in result.stdout
        assert "bye." in result.stdout

    def test_consult_argument_on_startup(self, tmp_path):
        path = tmp_path / "facts.coral"
        path.write_text("item(apple). item(pear).")
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                f"from repro.shell.repl import main; main([{str(path)!r}])",
            ],
            input="item(X)?\n@quit.\n",
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "2 answer(s)." in result.stdout

    def test_eof_exits_cleanly(self):
        result = subprocess.run(
            [sys.executable, "-c", "from repro.shell.repl import main; main([])"],
            input="p(1).\n",
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0


class TestCheckCommand:
    def test_check_reports_problems(self):
        shell = Shell()
        shell.execute(
            "module m. export p(f). p(X) :- edgee(X, Unused). end_module."
        )
        output = shell.execute("@check.")
        assert "unknown-predicate" in output
        assert "singleton-variable" in output

    def test_check_clean(self):
        shell = Shell()
        shell.execute("edge(1, 2).")
        shell.execute(
            "module m. export p(bf). p(X, Y) :- edge(X, Y). end_module."
        )
        assert shell.execute("@check.") == "no problems found."
