"""End-to-end test of the interactive shell process (the coral-shell entry
point) driven through stdin, plus the @check command."""

import subprocess
import sys

import pytest

from repro.shell import Shell

SCRIPT = """\
edge(1, 2).
edge(2, 3).
module tc.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
path(1, Y)?
@stats.
@quit.
"""


class TestShellProcess:
    def test_full_session_through_stdin(self):
        result = subprocess.run(
            [sys.executable, "-c", "from repro.shell.repl import main; main([])"],
            input=SCRIPT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "Y = 2" in result.stdout
        assert "Y = 3" in result.stdout
        assert "2 answer(s)." in result.stdout
        assert "inferences" in result.stdout
        assert "bye." in result.stdout

    def test_consult_argument_on_startup(self, tmp_path):
        path = tmp_path / "facts.coral"
        path.write_text("item(apple). item(pear).")
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                f"from repro.shell.repl import main; main([{str(path)!r}])",
            ],
            input="item(X)?\n@quit.\n",
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "2 answer(s)." in result.stdout

    def test_eof_exits_cleanly(self):
        result = subprocess.run(
            [sys.executable, "-c", "from repro.shell.repl import main; main([])"],
            input="p(1).\n",
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0


class TestCheckCommand:
    def test_check_reports_problems(self):
        shell = Shell()
        shell.execute(
            "module m. export p(f). p(X) :- edgee(X, Unused). end_module."
        )
        output = shell.execute("@check.")
        assert "unknown-predicate" in output
        assert "singleton-variable" in output

    def test_check_clean(self):
        shell = Shell()
        shell.execute("edge(1, 2).")
        shell.execute(
            "module m. export p(bf). p(X, Y) :- edge(X, Y). end_module."
        )
        assert shell.execute("@check.") == "no problems found."


class TestHelpCommand:
    def test_help_lists_every_command(self):
        """@help must not drift from the dispatcher: every command name
        handled in Shell._command appears in the help text."""
        import inspect
        import re

        source = inspect.getsource(Shell._command)
        commands = set(re.findall(r'name == "(\w+)"', source))
        assert commands, "no commands found in Shell._command — regex drifted"
        help_text = Shell().execute("@help.")
        missing = sorted(
            name for name in commands if f"@{name}" not in help_text
        )
        assert not missing, f"@help omits: {missing}"

    def test_help_mentions_previously_missing_commands(self):
        help_text = Shell().execute("@help.")
        for name in ("@modules", "@dump", "@check", "@profile"):
            assert name in help_text


class TestProfileCommand:
    def test_profile_renders_report(self):
        shell = Shell()
        shell.execute("edge(1, 2). edge(2, 3).")
        shell.execute(
            "module tc. export path(bf).\n"
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
            "end_module."
        )
        output = shell.execute('@profile "path(1, X)".')
        assert "2 answer(s)." in output
        assert "query profile" in output
        assert "rule applications" in output

    def test_profile_usage_and_errors(self):
        shell = Shell()
        assert "usage" in shell.execute("@profile.")
        assert shell.execute('@profile "path(1, X".').startswith("error:")
        # a failed profile must uninstall the hook (session stays usable)
        assert shell.session.ctx.obs is None
