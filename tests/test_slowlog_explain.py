"""EXPLAIN / EXPLAIN ANALYZE rendering, the slow-query log, and the shell
commands that surface both (@explain, @top)."""

import json

import pytest

from repro import Session
from repro.errors import CoralError
from repro.server import CoralServer
from repro.shell.repl import Shell

TC_PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4).

    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


def _session():
    session = Session()
    session.consult_string(TC_PROGRAM)
    return session


class TestExplain:
    def test_module_plan_shows_rewriting_and_scc_order(self):
        plan = _session().explain("path(1, X)?")
        assert plan.startswith("EXPLAIN path(1, X)")
        assert "module: tc" in plan
        assert "call adornment: bf" in plan
        assert "chosen form: bf" in plan
        assert "rewriting:" in plan
        assert "scc order" in plan
        assert "join order:" in plan

    def test_unbound_call_uses_ff_form(self):
        plan = _session().explain("path(X, Y)?")
        assert "call adornment: ff" in plan
        assert "chosen form: ff" in plan

    def test_base_relation_plan(self):
        plan = _session().explain("edge(1, X)?")
        assert "base relation scan: edge/2" in plan
        assert "selection on argument(s): 0" in plan

    def test_base_relation_full_scan(self):
        plan = _session().explain("edge(X, Y)?")
        assert "full scan" in plan

    def test_unknown_predicate_raises(self):
        with pytest.raises(CoralError, match="nothing known"):
            _session().explain("mystery(X)?")

    def test_analyze_runs_the_query_and_measures(self):
        plan = _session().explain("path(1, X)?", analyze=True)
        assert "ANALYZE: 3 answer(s)" in plan
        assert "iterations:" in plan
        assert "apps" in plan  # per-rule cost lines

    def test_analyze_leaves_observer_slot_free(self):
        session = _session()
        session.explain("path(1, X)?", analyze=True)
        assert session.ctx.obs is None
        # and it composes with a flight recorder installed
        recorder = session.enable_flight_recorder()
        plan = session.explain("path(1, X)?", analyze=True)
        assert "ANALYZE" in plan
        assert session.ctx.obs is recorder


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_query(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        session = _session()
        log = session.enable_slow_query_log(path, threshold=0.0)
        answers = session.query("path(1, X)").all()
        assert len(answers) == 3
        assert log.entries_written == 1
        with open(path) as handle:
            entry = json.loads(handle.readline())
        assert entry["query"] == "path(1, X)"
        assert entry["answers"] == 3
        assert entry["finished"] is True
        assert entry["wall_seconds"] >= 0.0
        assert "module: tc" in entry["plan"]
        assert entry["eval"]  # nonzero evaluation counters

    def test_high_threshold_logs_nothing(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        session = _session()
        log = session.enable_slow_query_log(path, threshold=3600.0)
        session.query("path(1, X)").all()
        assert log.entries_written == 0

    def test_abandoned_cursor_logged_as_unfinished(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        session = _session()
        log = session.enable_slow_query_log(path, threshold=0.0)
        result = session.query("path(1, X)")
        assert result.get_next() is not None
        result.close()
        assert log.entries_written == 1
        assert log.last_entry["finished"] is False
        assert log.last_entry["answers"] == 1

    def test_analyze_mode_does_not_relog_itself(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        session = _session()
        log = session.enable_slow_query_log(path, threshold=0.0, analyze=True)
        session.query("path(1, X)").all()
        # the analyze re-run under the profiler must not append a second entry
        assert log.entries_written == 1
        assert "ANALYZE" in log.last_entry["plan"]

    def test_disable_stops_logging(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        session = _session()
        log = session.enable_slow_query_log(path, threshold=0.0)
        session.query("path(1, X)").all()
        session.disable_slow_query_log()
        session.query("path(1, X)").all()
        assert log.entries_written == 1

    def test_negative_threshold_rejected(self, tmp_path):
        session = _session()
        with pytest.raises(ValueError):
            session.enable_slow_query_log(
                str(tmp_path / "slow.jsonl"), threshold=-1.0
            )

    def test_unwritable_path_never_fails_the_query(self):
        session = _session()
        log = session.enable_slow_query_log(
            "/nonexistent-dir/slow.jsonl", threshold=0.0
        )
        answers = session.query("path(1, X)").all()
        assert len(answers) == 3  # query unharmed
        assert log.entries_written == 0


class TestShellExplain:
    def test_explain_command(self):
        shell = Shell(session=_session())
        output = shell.execute('@explain "path(1, X)".')
        assert "EXPLAIN path(1, X)" in output
        assert "module: tc" in output

    def test_explain_analyze_command(self):
        shell = Shell(session=_session())
        output = shell.execute('@explain analyze "path(1, X)".')
        assert "ANALYZE: 3 answer(s)" in output

    def test_explain_usage(self):
        shell = Shell(session=_session())
        assert "usage" in shell.execute("@explain.")

    def test_explain_error_is_reported_not_raised(self):
        shell = Shell(session=_session())
        output = shell.execute('@explain "mystery(X)".')
        assert output.startswith("error:")


class TestShellTop:
    def test_top_requires_remote_mode(self):
        shell = Shell(session=_session())
        assert "@connect" in shell.execute("@top.")

    def test_top_renders_dashboard(self):
        session = _session()
        with CoralServer(session, port=0) as server:
            shell = Shell()
            host, port = server.address
            shell.execute(f"@connect {host}:{port}.")
            shell.execute("path(1, X)?")
            output = shell.execute("@top.")
            shell.execute("@disconnect.")
        assert "coral-server @top" in output
        assert "requests/s:" in output
        assert "FETCH" in output  # latency percentiles by op
        assert "cursors:" in output

    def test_top_multiple_samples(self):
        session = _session()
        with CoralServer(session, port=0) as server:
            shell = Shell()
            host, port = server.address
            shell.execute(f"@connect {host}:{port}.")
            output = shell.execute("@top 2 0.01.")
            shell.execute("@disconnect.")
        assert output.count("coral-server @top") == 2

    def test_top_usage_on_bad_arguments(self):
        session = _session()
        with CoralServer(session, port=0) as server:
            shell = Shell()
            host, port = server.address
            shell.execute(f"@connect {host}:{port}.")
            assert "usage" in shell.execute("@top nope.")
            assert "usage" in shell.execute("@top 0.")
            shell.execute("@disconnect.")

    def test_render_top_handles_minimal_payload(self):
        # a pre-telemetry server (or mocked stats) without rates/latency
        text = Shell._render_top({"connections": {}, "cursors": {}})
        assert "coral-server @top" in text
