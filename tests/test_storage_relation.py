"""Unit tests for persistent relations (paper Sections 2, 3.2)."""

import pytest

from repro.errors import StorageError
from repro.relations import Tuple
from repro.storage import BufferPool, PersistentRelation, StorageServer
from repro.terms import Atom, Functor, Int, Str, Var


@pytest.fixture
def pool(tmp_path):
    server = StorageServer(str(tmp_path))
    pool = BufferPool(server, capacity=32)
    yield pool
    pool.flush_all()
    server.close()


def t(*values):
    return Tuple(tuple(Int(v) if isinstance(v, int) else Atom(v) for v in values))


class TestPersistentRelation:
    def test_insert_and_scan(self, pool):
        rel = PersistentRelation("edge", 2, pool)
        rel.insert(t(1, 2))
        rel.insert(t(2, 3))
        assert len(rel) == 2
        assert {(x[0].value, x[1].value) for x in rel.scan()} == {(1, 2), (2, 3)}

    def test_duplicate_rejected_when_unique(self, pool):
        rel = PersistentRelation("edge", 2, pool)
        assert rel.insert(t(1, 2))
        assert not rel.insert(t(1, 2))
        assert len(rel) == 1

    def test_multiset_when_not_unique(self, pool):
        rel = PersistentRelation("multi", 2, pool, unique=False)
        rel.insert(t(1, 2))
        rel.insert(t(1, 2))
        assert len(rel) == 2

    def test_functor_field_rejected(self, pool):
        """Paper restriction: primitive-typed fields only."""
        rel = PersistentRelation("bad", 1, pool)
        with pytest.raises(StorageError):
            rel.insert(Tuple((Functor("f", (Int(1),)),)))

    def test_many_tuples_span_pages(self, pool):
        rel = PersistentRelation("big", 2, pool)
        for i in range(2000):
            rel.insert(t(i, i + 1))
        assert len(rel) == 2000
        assert pool.server.num_pages("big.heap") > 1
        assert sum(1 for _ in rel.scan()) == 2000

    def test_indexed_probe_uses_btree(self, pool):
        rel = PersistentRelation("edge", 2, pool)
        rel.create_index([0])
        for i in range(500):
            rel.insert(t(i % 50, i))
        pool.server.stats.reset()
        hits = list(rel.scan([Int(7), Var("Y")], None))
        assert len(hits) == 10
        assert all(tup[0].value == 7 for tup in hits)

    def test_index_created_after_data_covers_existing(self, pool):
        rel = PersistentRelation("edge", 2, pool)
        for i in range(100):
            rel.insert(t(i, i + 1))
        rel.create_index([0])
        hits = list(rel.scan([Int(42), Var("Y")], None))
        assert len(hits) == 1

    def test_delete_updates_heap_and_indexes(self, pool):
        rel = PersistentRelation("edge", 2, pool)
        rel.create_index([0])
        rel.insert(t(1, 2))
        rel.insert(t(1, 3))
        assert rel.delete(t(1, 2))
        assert len(rel) == 1
        hits = list(rel.scan([Int(1), Var("Y")], None))
        assert [h[1].value for h in hits] == [3]

    def test_unbound_probe_falls_back_to_heap_scan(self, pool):
        rel = PersistentRelation("edge", 2, pool)
        rel.create_index([0])
        rel.insert(t(1, 2))
        hits = list(rel.scan([Var("X"), Int(2)], None))
        assert len(hits) == 1

    def test_strings_and_atoms(self, pool):
        rel = PersistentRelation("people", 2, pool)
        rel.insert(Tuple((Atom("john"), Str("123 Main St"))))
        hits = list(rel.scan([Atom("john"), Var("A")], None))
        assert hits[0][1] == Str("123 Main St")

    def test_persists_across_reopen(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=16)
        rel = PersistentRelation("edge", 2, pool)
        rel.create_index([0])
        for i in range(100):
            rel.insert(t(i, i + 1))
        pool.flush_all()
        server.close()

        server2 = StorageServer(str(tmp_path))
        pool2 = BufferPool(server2, capacity=16)
        rel2 = PersistentRelation("edge", 2, pool2)
        assert len(rel2) == 100
        hits = list(rel2.scan([Int(5), Var("Y")], None))
        assert [h[1].value for h in hits] == [6]
        server2.close()

    def test_reopen_with_wrong_arity_rejected(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=8)
        PersistentRelation("edge", 2, pool)
        with pytest.raises(StorageError):
            PersistentRelation("edge", 3, pool)
        server.close()

    def test_get_next_tuple_drives_page_io(self, pool):
        """Paper Section 2: a get-next-tuple request on a persistent relation
        becomes a page-level I/O request when the page is not buffered."""
        rel = PersistentRelation("edge", 2, pool)
        for i in range(2000):
            rel.insert(t(i, i + 1))
        pool.flush_all()
        pool.drop_all()
        pool.stats.reset()
        cursor = rel.scan()
        first = cursor.get_next()
        assert first is not None
        assert pool.stats.misses >= 1  # the first fetch faulted a page in
        misses_after_first = pool.stats.misses
        for _ in range(10):  # next few tuples come from the same page
            cursor.get_next()
        assert pool.stats.misses == misses_after_first
