"""The repro.obs subsystem: metrics registry, event tracer, query profiler,
the profiler-overhead guard, and the Chrome-trace golden schema."""

import json
import os
import statistics
import threading
import time

import pytest

from repro import Session
from repro.errors import CoralError
from repro.obs import (
    Counter,
    EventTracer,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    SIZE_BUCKETS,
    TelemetryServer,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

TC_MODULE = """
module tc.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


def _chain_session(length):
    session = Session()
    facts = " ".join(f"edge({i}, {i + 1})." for i in range(1, length + 1))
    session.consult_string(facts + "\n" + TC_MODULE)
    return session


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_values(self):
        counter = Counter("apps", "rule applications", ("rule",))
        cell = counter.labels("r1")
        cell.inc()
        cell.inc(2)
        counter.inc(5, "r2")
        assert counter.value("r1") == 3
        assert counter.value("r2") == 5
        assert counter.value("never") == 0
        assert counter.collect() == {("r1",): 3, ("r2",): 5}

    def test_counter_rejects_decrease_and_bad_labels(self):
        counter = Counter("c", labelnames=("a",))
        with pytest.raises(MetricError):
            counter.inc(-1, "x")
        with pytest.raises(MetricError):
            counter.labels("x", "y")

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3

    def test_histogram_fixed_buckets(self):
        histogram = Histogram("sizes", boundaries=SIZE_BUCKETS)
        for value in (0, 1, 2, 5, 100_000):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["boundaries"] == list(SIZE_BUCKETS)
        # 0 and 1 land in the first bucket (upper-inclusive edges),
        # 2 in (1, 4], 5 in (4, 16], 100000 in the implicit +inf bucket
        assert snap["bucket_counts"][0] == 2
        assert snap["bucket_counts"][1] == 1
        assert snap["bucket_counts"][2] == 1
        assert snap["bucket_counts"][-1] == 1
        assert snap["count"] == 5
        assert snap["sum"] == 100_008

    def test_histogram_rejects_unsorted_boundaries(self):
        with pytest.raises(MetricError):
            Histogram("bad", boundaries=(3, 1, 2))

    def test_registry_reuses_and_typechecks(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        assert registry.counter("x") is first
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x", labelnames=("a",))
        counter.inc(5, "l")
        counter.labels("l").inc()
        registry.histogram("h").observe(1.0)
        assert counter.value("l") == 0.0
        assert len(registry) == 0
        assert registry.collect() == {}

    def test_collect_schema(self):
        registry = MetricsRegistry()
        registry.counter("apps", "help text", ("rule",)).inc(2, "r1")
        out = registry.collect()
        assert out["apps"]["kind"] == "counter"
        assert out["apps"]["help"] == "help text"
        assert out["apps"]["labels"] == ["rule"]
        assert out["apps"]["values"] == {"r1": 2}
        json.dumps(out)  # must be JSON-safe as-is


class TestHistogramPercentiles:
    def test_uniform_distribution_interpolates_accurately(self):
        """1..1024 uniform: bucket interpolation should land on the exact
        quantiles because the distribution really is linear inside each
        power-of-four bucket."""
        histogram = Histogram("u", boundaries=SIZE_BUCKETS)
        for value in range(1, 1025):
            histogram.observe(value)
        assert histogram.percentile(0.50) == pytest.approx(512.0)
        assert histogram.percentile(0.99) == pytest.approx(1013.76)
        assert histogram.percentile(1.0) == pytest.approx(1024.0)

    def test_single_bucket_linear_interpolation(self):
        histogram = Histogram("s", boundaries=SIZE_BUCKETS)
        for _ in range(10):
            histogram.observe(3)  # all land in the (1, 4] bucket
        assert histogram.percentile(0.5) == pytest.approx(2.5)
        assert histogram.percentile(0.1) == pytest.approx(1.3)

    def test_overflow_bucket_clamps_to_last_boundary(self):
        histogram = Histogram("o", boundaries=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.percentile(0.99) == 2.0

    def test_empty_or_unknown_series_is_zero(self):
        histogram = Histogram("e", labelnames=("op",))
        assert histogram.percentile(0.5, "never-observed") == 0.0

    def test_out_of_range_quantile_rejected(self):
        histogram = Histogram("q")
        with pytest.raises(MetricError):
            histogram.percentile(0.0)
        with pytest.raises(MetricError):
            histogram.percentile(1.5)

    def test_snapshot_carries_quantiles(self):
        histogram = Histogram("snap", boundaries=SIZE_BUCKETS)
        for value in range(1, 101):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["p50"] == histogram.percentile(0.50)
        assert snap["p90"] == histogram.percentile(0.90)
        assert snap["p99"] == histogram.percentile(0.99)
        assert snap["p50"] <= snap["p90"] <= snap["p99"]

    def test_labelled_series_are_independent(self):
        histogram = Histogram("l", labelnames=("op",), boundaries=(1, 2, 4))
        histogram.observe(1, "fast")
        histogram.observe(4, "slow")
        histogram.observe(4, "slow")
        assert histogram.percentile(0.5, "fast") <= 1.0
        assert histogram.percentile(0.5, "slow") > 2.0


class TestRegistryConflicts:
    def test_conflicting_labelnames_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("a",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("c", labelnames=("b",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("c")  # no labels != ("a",)

    def test_conflicting_histogram_boundaries_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(MetricError, match="boundaries"):
            registry.histogram("h", boundaries=(1.0, 2.0, 3.0))

    def test_compatible_reregistration_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.histogram(
            "h", "help", labelnames=("op",), boundaries=(1.0, 2.0)
        )
        again = registry.histogram(
            "h", "help", labelnames=("op",), boundaries=(1.0, 2.0)
        )
        assert again is first

    def test_kind_conflict_rejected_both_ways(self):
        registry = MetricsRegistry()
        registry.gauge("g")
        with pytest.raises(MetricError, match="already registered"):
            registry.histogram("g")


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_complete_instant_and_span(self):
        tracer = EventTracer()
        start = tracer.now()
        tracer.complete("query", "eval", start, query="p/1")
        tracer.instant("disk.sync", "storage")
        with tracer.span("rewrite", "compile", module="m"):
            pass
        assert [event.ph for event in tracer.events] == ["X", "i", "X"]
        assert tracer.events[0].args == {"query": "p/1"}

    def test_limit_drops_but_counts(self):
        tracer = EventTracer(limit=2)
        for _ in range(5):
            tracer.instant("e", "t")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert tracer.chrome_trace()["otherData"]["dropped_events"] == 3

    def test_chrome_trace_schema(self):
        tracer = EventTracer()
        first = tracer.now()
        tracer.complete("a", "eval", first)
        tracer.instant("b", "storage")
        trace = tracer.chrome_trace()
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        for event in events:
            assert set(event) >= {"name", "cat", "ph", "ts", "pid", "tid"}
            assert event["ts"] >= 0
        assert min(event["ts"] for event in events) == 0  # rebased
        assert "dur" in events[0] and events[0]["dur"] >= 0
        assert events[1]["s"] == "t"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.complete("a", "eval", tracer.now(), k=1)
        tracer.instant("b", "storage")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["name"] == "a" and lines[0]["args"] == {"k": 1}
        assert "dur_us" in lines[0] and "dur_us" not in lines[1]

    def test_concurrent_writers_keep_jsonl_valid(self, tmp_path):
        """8 threads hammering one tracer: the bound must hold exactly and
        every dumped line must be one valid JSON object (the lock covers
        check-then-append, so the limit cannot be overshot by a race)."""
        writers, per_writer, limit = 8, 500, 1000
        tracer = EventTracer(limit=limit)
        barrier = threading.Barrier(writers)

        def hammer(index):
            barrier.wait()
            for sequence in range(per_writer):
                tracer.instant(f"w{index}.{sequence}", "test", seq=sequence)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = writers * per_writer
        assert len(tracer) == limit
        assert tracer.dropped == total - limit
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == limit
        for line in lines:
            record = json.loads(line)  # raises on any interleaved write
            assert isinstance(record, dict)
            assert record["name"].startswith("w")

    def test_chrome_trace_while_writing(self):
        """Snapshots under concurrent appends must not crash or tear."""
        tracer = EventTracer(limit=10_000)
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                tracer.instant("tick", "test")

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                trace = tracer.chrome_trace()
                for event in trace["traceEvents"]:
                    assert event["name"] == "tick"
        finally:
            stop.set()
            thread.join()


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_profiled_query_counts_rules_and_iterations(self):
        session = _chain_session(6)
        with session.profile() as prof:
            answers = session.query("path(1, X)").all()
        profile = prof.profile
        assert len(answers) == 6
        assert profile.eval["rule_applications"] > 0
        assert profile.eval["facts_inserted"] > 0
        assert profile.iterations, "no fixpoint iterations recorded"
        assert sum(rule["applications"] for rule in profile.rules) == (
            profile.eval["rule_applications"]
        )
        derived = sum(rule["derived"] for rule in profile.rules)
        duplicates = sum(rule["duplicates"] for rule in profile.rules)
        # facts_inserted also counts magic seed facts inserted at module-call
        # setup (one per subgoal), which no rule application derives
        seeds = profile.eval["facts_inserted"] - derived
        assert 0 <= seeds <= profile.eval["subgoals"]
        assert duplicates == profile.eval["duplicates"]
        rendered = profile.render()
        for section in ("evaluation", "rules", "fixpoint iterations", "trace:"):
            assert section in rendered

    def test_profiler_uninstalls_cleanly(self):
        session = _chain_session(3)
        with session.profile():
            pass
        assert session.ctx.obs is None
        # a second profile on the same session must work
        with session.profile() as prof:
            session.query("path(1, X)").all()
        assert prof.profile is not None

    def test_profilers_do_not_nest(self):
        session = _chain_session(3)
        with session.profile():
            with pytest.raises(CoralError):
                with session.profile():
                    pass

    def test_uninstall_on_exception(self):
        session = _chain_session(3)
        with pytest.raises(RuntimeError):
            with session.profile():
                raise RuntimeError("boom")
        assert session.ctx.obs is None

    def test_trace_false_skips_tracer(self):
        session = _chain_session(3)
        with session.profile(trace=False) as prof:
            session.query("path(1, X)").all()
        assert prof.profile.tracer is None
        with pytest.raises(CoralError):
            prof.profile.chrome_trace()

    def test_pipelined_subgoals_recorded(self):
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3).

            module pipe. @pipelining.
            export reach(bf).
            reach(X, Y) :- edge(X, Y).
            end_module.
            """
        )
        with session.profile() as prof:
            session.query("reach(1, X)").all()
        pipeline = prof.profile.subgoals["pipeline"]
        assert pipeline["reach/2"]["calls"] >= 1
        assert pipeline["edge/2"]["calls"] >= 1

    def test_storage_counters_and_fault_observer_restored(self, tmp_path):
        session = Session(data_directory=str(tmp_path), buffer_capacity=4)
        relation = session.persistent_relation("edge", 2)
        for i in range(1, 40):
            relation.insert_values(i, i + 1)
        session.consult_string(TC_MODULE)
        session.storage_pool.drop_all()
        injector = session._server.faults
        assert injector.observer is None
        with session.profile() as prof:
            session.query("path(30, X)").all()
        assert injector.observer is None  # restored on exit
        storage = prof.profile.storage
        assert storage["buffer"]["hits"] + storage["buffer"]["misses"] > 0
        assert storage["server"]["page_reads"] > 0  # pool was dropped cold
        assert prof.profile.buffer_hit_rate is not None
        assert "disk.read_page" in storage["fault_points"]
        # storage instants share the fault-injection vocabulary
        names = {event.name for event in prof.profile.tracer.events}
        assert "disk.read_page" in names
        session.close()

    def test_to_dict_is_json_safe(self):
        session = _chain_session(4)
        with session.profile() as prof:
            session.query("path(1, X)").all()
        blob = json.dumps(prof.profile.to_dict())
        data = json.loads(blob)
        assert set(data) == {
            "wall_time", "eval", "rules", "iterations", "subgoals",
            "scans", "storage", "metrics",
        }
        assert data["metrics"]["eval.rule.applications"]["kind"] == "counter"


# ---------------------------------------------------------------------------
# overhead guard
# ---------------------------------------------------------------------------


class TestOverheadGuard:
    def test_disabled_observability_is_near_free(self):
        """With no profiler installed every hook is one ``is not None``
        branch; evaluation speed after a profiled run must stay within
        1.15x of a never-profiled session (median of 5 runs each)."""

        def run(session):
            start = time.perf_counter()
            count = len(session.query("path(X, Y)").all())
            elapsed = time.perf_counter() - start
            assert count == 40 * 41 // 2
            return elapsed

        baseline_session = _chain_session(40)
        run(baseline_session)  # warm the compile cache
        baseline = statistics.median(run(baseline_session) for _ in range(5))

        profiled_session = _chain_session(40)
        run(profiled_session)
        with profiled_session.profile():
            profiled_session.query("path(X, Y)").all()
        assert profiled_session.ctx.obs is None
        after = statistics.median(run(profiled_session) for _ in range(5))

        # +1ms absolute slack keeps sub-millisecond jitter from flaking CI
        assert after <= baseline * 1.15 + 0.001, (
            f"disabled-observability overhead: {after:.4f}s vs "
            f"baseline {baseline:.4f}s"
        )

    def test_flight_recorder_and_idle_exposition_within_budget(self):
        """The telemetry plane's standing cost: a flight recorder installed
        as the observer plus an idle /metrics listener must keep the same
        chain-40 workload within 1.15x of the obs-disabled baseline —
        that is what makes them safe to leave on in production."""

        def run(session):
            start = time.perf_counter()
            count = len(session.query("path(X, Y)").all())
            elapsed = time.perf_counter() - start
            assert count == 40 * 41 // 2
            return elapsed

        baseline_session = _chain_session(40)
        telemetry_session = _chain_session(40)
        run(baseline_session)  # warm both compile caches
        run(telemetry_session)
        recorder = telemetry_session.enable_flight_recorder(capacity=4096)
        baseline_samples, telemetry_samples = [], []
        with TelemetryServer(port=0):  # idle scrape listener
            # interleave the two sessions so machine-load drift during the
            # measurement hits both sides equally instead of skewing one
            for _ in range(7):
                baseline_samples.append(run(baseline_session))
                telemetry_samples.append(run(telemetry_session))
        baseline = statistics.median(baseline_samples)
        after = statistics.median(telemetry_samples)
        assert telemetry_session.ctx.obs is recorder
        assert recorder.recorded > 0, "recorder saw no events"

        assert after <= baseline * 1.15 + 0.001, (
            f"flight-recorder + exposition overhead: {after:.4f}s vs "
            f"baseline {baseline:.4f}s"
        )


# ---------------------------------------------------------------------------
# Chrome-trace golden schema
# ---------------------------------------------------------------------------


def _normalized_trace(trace):
    """Reduce a Chrome trace to its timing-independent schema: exactly what
    must stay stable for saved traces to keep loading in chrome://tracing."""
    events = trace["traceEvents"]
    return {
        "top_level_keys": sorted(trace.keys()),
        "displayTimeUnit": trace["displayTimeUnit"],
        "producer": trace["otherData"]["producer"],
        "phases": sorted({event["ph"] for event in events}),
        "categories": sorted({event["cat"] for event in events}),
        "names": sorted({event["name"] for event in events}),
        "complete_events_have_dur": all(
            "dur" in event for event in events if event["ph"] == "X"
        ),
        "instants_are_thread_scoped": all(
            event.get("s") == "t" for event in events if event["ph"] == "i"
        ),
    }


class TestChromeTraceGolden:
    def _trace(self):
        session = _chain_session(4)
        with session.profile() as prof:
            session.query("path(1, X)").all()
        return prof.profile.chrome_trace()

    def test_matches_golden_schema(self):
        golden_path = os.path.join(GOLDEN_DIR, "chrome_trace_tc.json")
        with open(golden_path) as handle:
            golden = json.load(handle)
        assert _normalized_trace(self._trace()) == golden

    def test_events_well_formed(self):
        trace = self._trace()
        events = trace["traceEvents"]
        assert events, "profiled TC query produced no trace events"
        assert min(event["ts"] for event in events) == 0
        for event in events:
            assert set(event) >= {"name", "cat", "ph", "ts", "pid", "tid"}
            assert event["ph"] in ("X", "i")
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # the query span must bracket the evaluation
        query_spans = [e for e in events if e["name"] == "query"]
        assert len(query_spans) == 1
        assert query_spans[0]["args"]["query"] == "path/2"
