"""Unit + property tests for the buffer pool (paper Sections 2, 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.file import StorageServer
from repro.storage.pages import PAGE_SIZE


@pytest.fixture
def server(tmp_path):
    server = StorageServer(str(tmp_path))
    yield server
    server.close()


def _fill(server, file_name, count):
    for i in range(count):
        pid = server.allocate_page(file_name)
        server.write_page(file_name, pid, bytes([i % 256]) * PAGE_SIZE)


class TestBufferPool:
    def test_hit_after_miss(self, server):
        _fill(server, "f", 1)
        pool = BufferPool(server, capacity=4)
        page = pool.fetch_page("f", 0)
        pool.unpin(page)
        page = pool.fetch_page("f", 0)
        pool.unpin(page)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_capacity_enforced_with_eviction(self, server):
        _fill(server, "f", 8)
        pool = BufferPool(server, capacity=4)
        for pid in range(8):
            page = pool.fetch_page("f", pid)
            pool.unpin(page)
        assert len(pool) == 4
        assert pool.stats.evictions == 4

    def test_lru_evicts_oldest_unpinned(self, server):
        _fill(server, "f", 3)
        pool = BufferPool(server, capacity=2)
        a = pool.fetch_page("f", 0)
        pool.unpin(a)
        b = pool.fetch_page("f", 1)
        pool.unpin(b)
        pool.unpin(pool.fetch_page("f", 0))  # touch 0: now 1 is LRU
        pool.unpin(pool.fetch_page("f", 2))  # evicts 1
        assert ("f", 1) not in pool._frames
        assert ("f", 0) in pool._frames

    def test_pinned_pages_not_evicted(self, server):
        _fill(server, "f", 3)
        pool = BufferPool(server, capacity=2)
        pinned = pool.fetch_page("f", 0)
        pool.unpin(pool.fetch_page("f", 1))
        pool.unpin(pool.fetch_page("f", 2))  # must evict page 1, not pinned 0
        assert ("f", 0) in pool._frames
        pool.unpin(pinned)

    def test_all_pinned_raises(self, server):
        _fill(server, "f", 3)
        pool = BufferPool(server, capacity=2)
        pool.fetch_page("f", 0)
        pool.fetch_page("f", 1)
        with pytest.raises(StorageError):
            pool.fetch_page("f", 2)

    def test_dirty_page_written_back_on_eviction(self, server):
        _fill(server, "f", 2)
        pool = BufferPool(server, capacity=1)
        page = pool.fetch_page("f", 0)
        page.data[:4] = b"MOD!"
        pool.unpin(page, dirty=True)
        pool.unpin(pool.fetch_page("f", 1))  # evicts dirty page 0
        assert bytes(server.read_page("f", 0)[:4]) == b"MOD!"

    def test_flush_all_persists_without_eviction(self, server):
        _fill(server, "f", 1)
        pool = BufferPool(server, capacity=4)
        page = pool.fetch_page("f", 0)
        page.data[:3] = b"abc"
        pool.unpin(page, dirty=True)
        pool.flush_all()
        assert bytes(server.read_page("f", 0)[:3]) == b"abc"
        assert len(pool) == 1

    def test_double_unpin_raises(self, server):
        _fill(server, "f", 1)
        pool = BufferPool(server, capacity=2)
        page = pool.fetch_page("f", 0)
        pool.unpin(page)
        with pytest.raises(StorageError):
            pool.unpin(page)

    def test_zero_capacity_rejected(self, server):
        with pytest.raises(StorageError):
            BufferPool(server, capacity=0)

    def test_smaller_pool_never_beats_larger_on_hits(self, server):
        """Sanity: hit counts grow (weakly) with capacity on a fixed trace."""
        _fill(server, "f", 16)
        trace = [(i * 7) % 16 for i in range(200)]
        hits = []
        for capacity in (2, 8, 16):
            pool = BufferPool(server, capacity=capacity)
            for pid in trace:
                pool.unpin(pool.fetch_page("f", pid))
            hits.append(pool.stats.hits)
        assert hits[0] <= hits[1] <= hits[2]


class TestBufferPoolProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        accesses=st.lists(st.integers(0, 9), min_size=1, max_size=120),
        capacity=st.integers(1, 8),
    )
    def test_reads_through_pool_always_correct(self, tmp_path_factory, accesses, capacity):
        """Whatever the access pattern and pool size, page contents read
        through the pool match what was written — including dirty pages
        bounced through eviction."""
        directory = tmp_path_factory.mktemp("pool")
        server = StorageServer(str(directory))
        try:
            _fill(server, "f", 10)
            pool = BufferPool(server, capacity=capacity)
            expected = {pid: bytes([pid % 256]) for pid in range(10)}
            for step, pid in enumerate(accesses):
                page = pool.fetch_page("f", pid)
                assert bytes(page.data[:1]) == expected[pid]
                stamp = bytes([(pid + step) % 256])
                page.data[:1] = stamp
                expected[pid] = stamp
                pool.unpin(page, dirty=True)
            pool.flush_all()
            for pid, first_byte in expected.items():
                assert bytes(server.read_page("f", pid)[:1]) == first_byte
        finally:
            server.close()
