"""Unit tests for builtin predicates."""

import io

import pytest

from repro.builtins import default_registry, eval_arith
from repro.builtins import io as coral_io
from repro.errors import EvaluationError, InstantiationError
from repro.terms import (
    Atom,
    BindEnv,
    Double,
    Functor,
    Int,
    NIL,
    Str,
    Trail,
    Var,
    list_elements,
    make_list,
    resolve,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def call(registry, name, args, env=None):
    """Collect all solutions of a builtin as resolved argument tuples."""
    env = env or BindEnv()
    trail = Trail()
    builtin = registry.lookup(name, len(args))
    assert builtin is not None, f"no builtin {name}/{len(args)}"
    solutions = []
    mark = trail.mark()
    for _ in builtin.impl(args, env, trail):
        solutions.append(tuple(resolve(a, env) for a in args))
    trail.undo_to(mark)
    return solutions


class TestArithmetic:
    def test_eval_simple(self):
        assert eval_arith(Int(3), None) == 3
        assert eval_arith(Double(2.5), None) == 2.5

    def test_eval_expression_tree(self):
        expr = Functor("+", (Int(1), Functor("*", (Int(2), Int(3)))))
        assert eval_arith(expr, None) == 7

    def test_eval_under_bindings(self):
        x = Var("X")
        env = BindEnv()
        env.bind(x, Int(10), None)
        assert eval_arith(Functor("+", (x, Int(5))), env) == 15

    def test_eval_division_by_zero(self):
        with pytest.raises(EvaluationError):
            eval_arith(Functor("/", (Int(1), Int(0))), None)

    def test_eval_unbound_raises_instantiation(self):
        with pytest.raises(InstantiationError):
            eval_arith(Functor("+", (Var("X"), Int(1))), BindEnv())

    def test_eval_non_arith_returns_none(self):
        assert eval_arith(Atom("a"), None) is None
        assert eval_arith(Functor("edge", (Int(1), Int(2))), None) is None

    def test_min_max_mod(self):
        assert eval_arith(Functor("min", (Int(3), Int(5))), None) == 3
        assert eval_arith(Functor("max", (Int(3), Int(5))), None) == 5
        assert eval_arith(Functor("mod", (Int(7), Int(3))), None) == 1


class TestComparisons:
    def test_less_than(self, registry):
        assert call(registry, "<", (Int(1), Int(2)))
        assert not call(registry, "<", (Int(2), Int(1)))

    def test_comparison_evaluates_arithmetic(self, registry):
        expr = Functor("+", (Int(1), Int(1)))
        assert call(registry, ">=", (expr, Int(2)))

    def test_numeric_cross_type(self, registry):
        assert call(registry, "==", (Int(1), Double(1.0)))

    def test_string_comparison(self, registry):
        assert call(registry, "<", (Str("a"), Str("b")))

    def test_atom_comparison(self, registry):
        assert call(registry, "!=", (Atom("a"), Atom("b")))

    def test_mixed_type_comparison_rejected(self, registry):
        with pytest.raises(EvaluationError):
            call(registry, "<", (Int(1), Atom("a")))

    def test_unbound_comparison_raises(self, registry):
        with pytest.raises(InstantiationError):
            call(registry, "<", (Var("X"), Int(1)))


class TestAssignment:
    def test_binds_computed_value(self, registry):
        """The Figure 3 idiom: C1 = C + EC."""
        c1 = Var("C1")
        env = BindEnv()
        solutions = call(
            registry, "=", (c1, Functor("+", (Int(3), Int(4)))), env=env
        )
        assert len(solutions) == 1
        assert solutions[0][0] == Int(7)  # C1 bound to the computed value

    def test_plain_unification(self, registry):
        x = Var("X")
        solutions = call(registry, "=", (x, Functor("f", (Int(1),))))
        assert solutions == [(Functor("f", (Int(1),)),) * 2]

    def test_failure_yields_nothing(self, registry):
        assert call(registry, "=", (Int(1), Int(2))) == []

    def test_arith_on_left_side(self, registry):
        solutions = call(registry, "=", (Functor("*", (Int(2), Int(3))), Var("X")))
        assert len(solutions) == 1
        assert solutions[0][1] == Int(6)  # X bound to the computed value


class TestAppend:
    def test_forward_mode(self, registry):
        result = Var("R")
        solutions = call(
            registry,
            "append",
            (make_list([Int(1)]), make_list([Int(2), Int(3)]), result),
        )
        assert len(solutions) == 1
        assert list_elements(solutions[0][2]) == [Int(1), Int(2), Int(3)]

    def test_empty_front(self, registry):
        solutions = call(registry, "append", (NIL, make_list([Int(1)]), Var("R")))
        assert list_elements(solutions[0][2]) == [Int(1)]

    def test_backward_mode_enumerates_splits(self, registry):
        whole = make_list([Int(1), Int(2), Int(3)])
        solutions = call(registry, "append", (Var("A"), Var("B"), whole))
        assert len(solutions) == 4  # [] / [1] / [1,2] / [1,2,3] prefixes

    def test_checking_mode(self, registry):
        lst = make_list([Int(1), Int(2)])
        assert call(registry, "append", (make_list([Int(1)]), make_list([Int(2)]), lst))
        assert not call(
            registry, "append", (make_list([Int(2)]), make_list([Int(1)]), lst)
        )


class TestMemberLength:
    def test_member_enumerates(self, registry):
        solutions = call(registry, "member", (Var("X"), make_list([Int(1), Int(2)])))
        assert [s[0] for s in solutions] == [Int(1), Int(2)]

    def test_member_checks(self, registry):
        lst = make_list([Int(1), Int(2)])
        assert call(registry, "member", (Int(2), lst))
        assert not call(registry, "member", (Int(5), lst))

    def test_length_of_proper_list(self, registry):
        solutions = call(registry, "length", (make_list([Int(1), Int(2)]), Var("N")))
        assert solutions[0][1] == Int(2)

    def test_length_builds_list(self, registry):
        solutions = call(registry, "length", (Var("L"), Int(3)))
        assert len(list_elements(solutions[0][0])) == 3

    def test_length_check_fails(self, registry):
        assert not call(registry, "length", (make_list([Int(1)]), Int(5)))


class TestIO:
    def test_write_and_nl(self, registry, monkeypatch):
        sink = io.StringIO()
        monkeypatch.setattr(coral_io, "output_stream", sink)
        call(registry, "write", (Int(42),))
        call(registry, "nl", ())
        assert sink.getvalue() == "42\n"

    def test_io_builtins_are_impure(self, registry):
        assert not registry.lookup("write", 1).pure
        assert registry.lookup("append", 3).pure


class TestRegistry:
    def test_duplicate_registration_rejected(self, registry):
        fresh = registry.copy()
        with pytest.raises(EvaluationError):
            fresh.register_function("append", 3, lambda a, e, t: iter(()))

    def test_replace_allowed(self, registry):
        fresh = registry.copy()
        fresh.register_function("append", 3, lambda a, e, t: iter(()), replace=True)
        assert fresh.lookup("append", 3) is not registry.lookup("append", 3)

    def test_copy_isolated(self, registry):
        fresh = registry.copy()
        fresh.register_function("mine", 1, lambda a, e, t: iter(()))
        assert registry.lookup("mine", 1) is None
