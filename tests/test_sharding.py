"""Sharding tests: hash ring, shard map, router, scatter-gather, chaos.

The acceptance bar from the sharding issue: an *unmodified*
``RemoteSession`` works against the router exactly as against a single
server; partitioned relations scatter on write and gather on read with
per-upstream backpressure; a client that dies mid-scatter-gather leaks
no cursors on any worker; and a SIGKILLed worker is restarted by the
supervisor while clients ride out the window on retriable errors.
"""

import hashlib
import socket
import time
import urllib.request

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import (
    FailoverError,
    ProtocolError,
    ReadOnlyError,
    ShardRoutingError,
    WorkerRestartingError,
)
from repro.faults import FaultInjector
from repro.server import CoralServer, PROTOCOL_VERSION
from repro.server.protocol import read_frame, write_frame
from repro.sharding import (
    HashRing,
    ShardMap,
    ShardRouter,
    WorkerPool,
    partition_key,
    stable_hash,
)
from repro.shell.repl import Shell

from .prom_parser import parse_and_validate

CHAIN = 10


def _tc_program(chain=CHAIN):
    edges = " ".join(f"edge({i}, {i + 1})." for i in range(1, chain))
    return f"""
        {edges}

        module tc.
        export path(bf, ff).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
    """


def _expected_from(start, chain=CHAIN):
    return sorted((start, y) for y in range(start + 1, chain + 1))


def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class _Fleet:
    """N in-process CoralServers behind a static WorkerPool + ShardRouter."""

    def __init__(self, count, shard_map=None, heartbeat=0.1, **router_kw):
        self.sessions = [Session() for _ in range(count)]
        self.servers = [
            CoralServer(session, port=0).start() for session in self.sessions
        ]
        self.pool = WorkerPool(
            count,
            endpoints=[server.address for server in self.servers],
            heartbeat=heartbeat,
        ).start()
        self.router = ShardRouter(
            self.pool, port=0, shard_map=shard_map, **router_kw
        ).start()

    def close(self):
        self.router.shutdown()
        self.pool.stop()
        for server in self.servers:
            server.shutdown()
        for session in self.sessions:
            session.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _raw_client(address):
    sock = socket.create_connection(address, timeout=10.0)
    write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
    header, _ = read_frame(sock)
    assert header["ok"], header
    return sock


# ---------------------------------------------------------------------------
# hash ring + shard map
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_stable_hash_is_blake2b_not_salted_hash(self):
        # must survive interpreter restarts: pinned to the blake2b digest,
        # never Python's per-process salted hash()
        digest = hashlib.blake2b(b"edge", digest_size=8).digest()
        assert stable_hash("edge") == int.from_bytes(digest, "big")

    def test_owner_is_deterministic_across_instances(self):
        keys = [f"pred{i}" for i in range(200)]
        one, two = HashRing(4), HashRing(4)
        assert [one.owner(k) for k in keys] == [two.owner(k) for k in keys]
        assert all(0 <= one.owner(k) < 4 for k in keys)

    def test_spread_covers_every_worker(self):
        spread = HashRing(4).spread(f"key{i}" for i in range(1000))
        assert set(spread) == {0, 1, 2, 3}
        # vnodes keep the imbalance moderate: no shard is empty or hoards
        assert min(spread.values()) > 100

    def test_growing_the_ring_moves_only_a_fraction(self):
        keys = [f"key{i}" for i in range(1000)]
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(1 for k in keys if before.owner(k) != after.owner(k))
        # consistent hashing: ~1/5 of keys move, never a wholesale reshuffle
        assert moved < 450

    def test_partition_key_joins_term_strings(self):
        assert partition_key([1, "a"]) == "1\x1fa"


class TestShardMap:
    def test_parse_pins_partitions_and_comments(self):
        mapping = ShardMap.parse(
            """
            # routing overrides
            tc = 2
            edge = *
            """,
            workers=4,
        )
        assert mapping.owner("tc") == 2
        assert mapping.is_partitioned("edge")
        assert not mapping.is_partitioned("tc")

    def test_unpinned_names_fall_back_to_the_ring(self):
        mapping = ShardMap(4)
        assert mapping.owner("whatever") == HashRing(4).owner("whatever")

    def test_owner_of_partitioned_name_is_refused(self):
        mapping = ShardMap(2, partitioned={"edge"})
        with pytest.raises(ShardRoutingError):
            mapping.owner("edge")

    def test_tuple_owner_spreads_and_is_deterministic(self):
        mapping = ShardMap(3, partitioned={"edge"})
        owners = {
            mapping.tuple_owner("edge", partition_key((i, i + 1)))
            for i in range(60)
        }
        assert owners == {0, 1, 2}
        assert mapping.tuple_owner("edge", "1\x1f2") == mapping.tuple_owner(
            "edge", "1\x1f2"
        )

    @pytest.mark.parametrize(
        "text",
        [
            "tc == 2",          # malformed
            "tc = two",         # not an index
            "tc = 7",           # pin out of range
            "tc = 1\ntc = *",   # duplicate name
        ],
    )
    def test_bad_lines_are_refused_with_line_numbers(self, text):
        with pytest.raises(ShardRoutingError):
            ShardMap.parse(text, workers=2)

    def test_load_accepts_none_dict_path_and_passthrough(self, tmp_path):
        assert ShardMap.load(None, 2).workers == 2
        from_dict = ShardMap.load({"tc": 1, "edge": "*"}, 2)
        assert from_dict.owner("tc") == 1 and from_dict.is_partitioned("edge")
        path = tmp_path / "shards.map"
        path.write_text("tc = 0\nedge = *\n")
        from_file = ShardMap.load(str(path), 2)
        assert from_file.owner("tc") == 0 and from_file.is_partitioned("edge")
        assert ShardMap.load(from_dict, 2) is from_dict


# ---------------------------------------------------------------------------
# routing through the router with an unmodified client
# ---------------------------------------------------------------------------


class TestRouterBasics:
    def test_unmodified_client_consults_and_queries(self):
        with _Fleet(3) as fleet:
            with RemoteSession(*fleet.router.address, batch_size=3) as db:
                assert db.server_info.startswith("repro.router/")
                db.consult_string(_tc_program())
                got = sorted(db.query("path(1, Y)").tuples())
                assert got == _expected_from(1)
                stats = db.stats()
                assert stats["role"] == "router"
                assert stats["sharding"]["workers"] == 3

    def test_consult_colocates_module_and_facts_on_one_worker(self):
        with _Fleet(3) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.consult_string(_tc_program())
            pins = fleet.router.learned_pins()
            assert "tc" in pins and "edge" in pins
            owners = {pins[name] for name in ("tc", "edge", "path")}
            assert len(owners) == 1  # co-located: the module sees its facts
            owner = owners.pop()
            for index, session in enumerate(fleet.sessions):
                count = len(session.query("edge(X, Y)").all())
                assert count == (CHAIN - 1 if index == owner else 0)

    def test_insert_then_query_sticks_to_one_worker(self):
        with _Fleet(3) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                assert db.insert("color", "red")
                assert db.insert("color", "blue")
                assert sorted(db.query("color(X)").tuples()) == [
                    ("blue",), ("red",)
                ]
                assert db.delete("color", "red")
                assert db.query("color(X)").all() != []
            populated = [
                s for s in fleet.sessions if s.query("color(X)").all()
            ]
            assert len(populated) == 1

    def test_straddling_consult_is_refused(self):
        # a and b are pinned to different workers; one program cannot
        # consult facts for both (it would straddle two sessions)
        with _Fleet(2, shard_map={"a": 0, "b": 1}) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                with pytest.raises(ShardRoutingError):
                    db.consult_string("a(1). b(2).")

    def test_module_over_partitioned_relation_is_refused(self):
        # a module evaluates on ONE worker; letting it read a partitioned
        # relation would silently answer from a single shard's facts
        with _Fleet(2, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                with pytest.raises(ShardRoutingError):
                    db.consult_string(_tc_program())

    def test_replication_ops_are_refused_at_the_router(self):
        with _Fleet(2) as fleet:
            sock = _raw_client(fleet.router.address)
            try:
                write_frame(sock, {"op": "REPL_HELLO", "from_seq": 0})
                header, _ = read_frame(sock)
                assert not header["ok"]
                assert header["error"] == "ProtocolError"
            finally:
                sock.close()

    def test_worker_hello_marks_a_server_as_shard_worker(self):
        with CoralServer(Session(), port=0) as server:
            sock = _raw_client(server.address)
            try:
                write_frame(
                    sock,
                    {"op": "WORKER_HELLO", "worker": 3, "router": "router"},
                )
                header, _ = read_frame(sock)
                assert header["ok"] and header["worker"] == 3
                assert header["pid"] > 0
                assert server.stats()["worker"]["index"] == 3
                write_frame(sock, {"op": "WORKER_HELLO", "worker": -1})
                header, _ = read_frame(sock)
                assert not header["ok"]
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# partitioned relations: scatter on write, gather on read
# ---------------------------------------------------------------------------

EDGES = 60


class TestScatterGather:
    def _load(self, db):
        for i in range(EDGES):
            assert db.insert("edge", i, i + 1)

    def test_partitioned_insert_spreads_and_gather_reads_all(self):
        with _Fleet(3, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(*fleet.router.address, batch_size=7) as db:
                self._load(db)
                counts = [
                    len(s.query("edge(X, Y)").all()) for s in fleet.sessions
                ]
                assert sum(counts) == EDGES
                assert all(count > 0 for count in counts)  # truly spread
                got = sorted(db.query("edge(X, Y)").tuples())
                assert got == [(i, i + 1) for i in range(EDGES)]
                # delete routes to the owning shard by tuple
                assert db.delete("edge", 0, 1)
                assert len(db.query("edge(X, Y)").all()) == EDGES - 1
            assert fleet.router.open_cursors() == 0
            assert all(s.open_cursors() == 0 for s in fleet.servers)

    def test_partitioned_consult_splits_facts_by_tuple(self):
        with _Fleet(3, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                facts = " ".join(f"edge({i}, {i + 1})." for i in range(30))
                db.consult_string(facts)
                counts = [
                    len(s.query("edge(X, Y)").all()) for s in fleet.sessions
                ]
                assert sum(counts) == 30 and all(c > 0 for c in counts)
                # consult placement agrees with INSERT placement: deleting
                # a consulted fact through the router must find its shard
                assert db.delete("edge", 0, 1)
                assert len(db.query("edge(X, Y)").all()) == 29

    def test_gather_has_per_upstream_backpressure(self):
        """A partial FETCH drains shards in order: pulling 5 rows from a
        3-way scatter touches only the first shard with answers."""
        with _Fleet(3, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                self._load(db)
            sent = [
                s.metrics.counter("server.answers.sent", "")
                for s in fleet.servers
            ]
            baseline = [c.value() for c in sent]
            sock = _raw_client(fleet.router.address)
            try:
                write_frame(sock, {"op": "QUERY", "query": "edge(X, Y)"})
                header, _ = read_frame(sock)
                assert header["ok"]
                cursor = header["cursor"]
                # the scatter opened one cursor on every worker...
                assert _wait_until(
                    lambda: sum(s.open_cursors() for s in fleet.servers) == 3
                )
                write_frame(sock, {"op": "FETCH", "cursor": cursor, "max": 5})
                header, _ = read_frame(sock)
                assert header["ok"] and header["count"] == 5
                assert not header["done"]
                # ...but a 5-row pull cost exactly 5 answers fleet-wide:
                # later shards did no work on this client's behalf
                pulled = [
                    c.value() - base for c, base in zip(sent, baseline)
                ]
                assert sum(pulled) == 5
                assert sorted(pulled) == [0, 0, 5]
            finally:
                sock.close()

    def test_abrupt_disconnect_mid_gather_reclaims_every_worker(self):
        """The issue's cursor-lifecycle bar: a client that dies without
        BYE mid-scatter-gather must leak no cursors on ANY worker."""
        with _Fleet(3, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                self._load(db)
            sock = _raw_client(fleet.router.address)
            write_frame(sock, {"op": "QUERY", "query": "edge(X, Y)"})
            header, _ = read_frame(sock)
            cursor = header["cursor"]
            write_frame(sock, {"op": "FETCH", "cursor": cursor, "max": 4})
            header, _ = read_frame(sock)
            assert header["count"] == 4 and not header["done"]
            assert sum(s.open_cursors() for s in fleet.servers) == 3
            sock.close()  # die mid-stream; no CLOSE_CURSOR, no BYE
            assert _wait_until(
                lambda: all(s.open_cursors() == 0 for s in fleet.servers)
            ), [s.open_cursors() for s in fleet.servers]
            assert _wait_until(lambda: fleet.router.open_cursors() == 0)
            # unaffected bystander: a fresh client still gets everything
            with RemoteSession(*fleet.router.address, batch_size=7) as db:
                assert len(db.query("edge(X, Y)").all()) == EDGES

    def test_explicit_close_reclaims_every_worker(self):
        with _Fleet(3, shard_map={"edge": "*"}) as fleet:
            with RemoteSession(*fleet.router.address, batch_size=4) as db:
                self._load(db)
                result = db.query("edge(X, Y)")
                assert result.get_next() is not None
                assert sum(s.open_cursors() for s in fleet.servers) == 3
                result.close()
                assert _wait_until(
                    lambda: all(s.open_cursors() == 0 for s in fleet.servers)
                )
                assert fleet.router.open_cursors() == 0


# ---------------------------------------------------------------------------
# worker failure: retriable errors, supervision, recovery
# ---------------------------------------------------------------------------


class TestWorkerFailure:
    def test_query_to_down_worker_raises_worker_restarting(self):
        with _Fleet(2, shard_map={"tc": 0, "edge": 0, "path": 0},
                    heartbeat=0.05) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.consult_string(_tc_program())
            fleet.servers[0].shutdown()
            assert _wait_until(
                lambda: fleet.pool.workers[0].state == "down"
            )
            with RemoteSession(
                *fleet.router.address, restart_retries=0
            ) as db:
                with pytest.raises(WorkerRestartingError):
                    db.query("path(1, Y)").all()

    def test_mid_stream_worker_death_is_a_failover_error(self):
        with _Fleet(2, shard_map={"tc": 0, "edge": 0, "path": 0}) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.consult_string(_tc_program())
            sock = _raw_client(fleet.router.address)
            try:
                write_frame(sock, {"op": "QUERY", "query": "path(X, Y)"})
                header, _ = read_frame(sock)
                cursor = header["cursor"]
                write_frame(sock, {"op": "FETCH", "cursor": cursor, "max": 2})
                header, _ = read_frame(sock)
                assert header["ok"] and not header["done"]
                fleet.servers[0].shutdown()  # cursor dies with the worker
                write_frame(sock, {"op": "FETCH", "cursor": cursor, "max": 2})
                header, _ = read_frame(sock)
                assert not header["ok"]
                assert header["error"] == "FailoverError"
                # the router connection survives: reissuing works once the
                # shard is back (here: still down, so restarting error)
                write_frame(sock, {"op": "STATS"})
                header, _ = read_frame(sock)
                assert header["ok"]
            finally:
                sock.close()

    def test_client_rides_out_a_worker_restart(self):
        """The satellite-2 contract: WorkerRestartingError is retried with
        bounded backoff on the SAME healthy connection, and the request
        succeeds once the supervisor brings the shard back."""
        with _Fleet(2, shard_map={"color": 0}, heartbeat=0.05) as fleet:
            host, port = fleet.servers[0].address
            fleet.servers[0].shutdown()
            assert _wait_until(lambda: fleet.pool.workers[0].state == "down")
            with RemoteSession(
                *fleet.router.address,
                restart_retries=30,
                backoff=0.05,
            ) as db:
                import threading

                def _revive():
                    time.sleep(0.3)
                    fleet.sessions.append(Session())
                    fleet.servers[0] = CoralServer(
                        fleet.sessions[-1], host=host, port=port
                    ).start()

                reviver = threading.Thread(target=_revive)
                reviver.start()
                try:
                    assert db.insert("color", "red")
                finally:
                    reviver.join()
                assert db.counters["retries"] > 0
                assert db.counters["failovers"] == 0
            # the supervisor observed the bounce: generation advanced
            assert fleet.pool.workers[0].generation >= 2

    def test_read_only_errors_are_not_retried(self):
        # the taxonomy matters: ReadOnlyError means "wrong role", and
        # burning the restart budget on it would just slow the caller down
        with CoralServer(Session(), port=0, role="replica") as server:
            with RemoteSession(*server.address) as db:
                with pytest.raises(ReadOnlyError):
                    db.insert("color", "red")
                assert db.counters["retries"] == 0

    def test_router_net_faults_drop_one_connection_only(self):
        # reuse the repro.faults net points at the ROUTER's boundary: a
        # torn read kills that client's connection, nobody else's
        faults = FaultInjector().fail_at("net.read", hit=2)
        with _Fleet(2, faults=faults) as fleet:
            sock = _raw_client(fleet.router.address)  # read #1: HELLO
            try:
                write_frame(sock, {"op": "STATS"})  # read #2: injected fail
                try:  # the router drops us without any response frame
                    frame = read_frame(sock)
                except (ConnectionError, OSError):
                    frame = None
                assert frame is None
            finally:
                sock.close()
            with RemoteSession(*fleet.router.address) as db:  # bystander
                assert db.stats()["role"] == "router"


# ---------------------------------------------------------------------------
# aggregation: STATS, /metrics, @workers
# ---------------------------------------------------------------------------


class TestAggregation:
    def test_stats_aggregates_per_worker_sections(self):
        with _Fleet(2) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.consult_string(_tc_program())
                db.query("path(1, Y)").all()
                stats = db.stats()
            assert stats["role"] == "router"
            sharding = stats["sharding"]
            assert sharding["workers_up"] == 2
            assert "tc" in sharding["learned_pins"]
            workers = stats["workers"]
            assert set(workers) == {"0", "1"}
            for entry in workers.values():
                assert entry["state"] == "up"
                assert "requests" in entry

    def test_metrics_exposition_carries_worker_labels(self):
        with _Fleet(2, telemetry_port=0) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.consult_string(_tc_program())
                db.query("path(1, Y)").all()
            fleet.pool.fetch_stats(timeout=5.0)  # cache worker snapshots
            host, port = fleet.router.telemetry_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10.0
            ) as response:
                text = response.read().decode("utf-8")
            families = parse_and_validate(text)
            # the router's own counters...
            assert "coral_router_requests" in families
            # ...plus every worker's snapshot, distinguished by label
            labelled = {
                sample.labels["worker"]
                for family in families.values()
                for sample in family.samples
                if "worker" in sample.labels
            }
            assert {"0", "1"} <= labelled

    def test_shell_renders_worker_fleet_views(self):
        with _Fleet(2) as fleet:
            with RemoteSession(*fleet.router.address) as db:
                db.consult_string(_tc_program())
                stats = db.stats()
            top = Shell._render_top(stats)
            assert "#0" in top and "#1" in top
            workers = Shell._render_workers(stats)
            assert "2 of 2 workers up" in workers
            assert "tc->" in workers


# ---------------------------------------------------------------------------
# chaos: real subprocesses, SIGKILL, supervised restart
# ---------------------------------------------------------------------------


class TestChaosSubprocess:
    def test_sigkill_worker_is_restarted_and_clients_recover(self, tmp_path):
        pool = WorkerPool(
            2,
            data_dir=str(tmp_path),
            heartbeat=0.1,
            backoff=0.1,
            backoff_cap=0.5,
        )
        pool.start()
        try:
            with ShardRouter(
                pool, port=0, shard_map={"edge": "*"}
            ) as router:
                with RemoteSession(
                    *router.address, restart_retries=60, backoff=0.05
                ) as db:
                    for i in range(20):
                        assert db.insert("edge", i, i + 1)
                    assert len(db.query("edge(X, Y)").all()) == 20

                    old_pid = pool.kill(0)
                    assert old_pid is not None
                    assert _wait_until(
                        lambda: pool.workers[0].state == "up"
                        and pool.workers[0].pid != old_pid,
                        timeout=30.0,
                    ), pool.describe()
                    assert pool.workers[0].restarts >= 1

                    # the restarted worker lost its in-memory shard, but
                    # the fleet serves: writes land, reads gather, and the
                    # surviving shard's rows are all still there
                    assert db.insert("edge", 100, 101)
                    rows = db.query("edge(X, Y)").tuples()
                    assert (100, 101) in rows
                    survivors = [row for row in rows if row != (100, 101)]
                    assert 0 < len(survivors) < 20

                    stats = db.stats()
                    assert stats["workers"]["0"]["restarts"] >= 1
        finally:
            pool.stop()
