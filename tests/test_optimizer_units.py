"""Unit tests for the optimizer's compile-time decisions (Section 4)."""

import pytest

from repro import Session
from repro.builtins import default_registry
from repro.language import parse_module
from repro.optimizer import Optimizer
from repro.relations import ArgumentIndexSpec

REGISTRY = default_registry()


def optimizer():
    return Optimizer(REGISTRY.is_builtin, REGISTRY.lookup)


TC = parse_module(
    """
    module tc.
    export path(bf, ff).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
    """
)


class TestTechniqueSelection:
    def test_bound_form_defaults_to_supmagic(self):
        compiled = optimizer().compile(TC, "path", "bf")
        assert compiled.rewritten.technique == "supplementary_magic"

    def test_all_free_form_skips_rewriting(self):
        compiled = optimizer().compile(TC, "path", "ff")
        assert compiled.rewritten.technique == "none"
        assert compiled.rewritten.magic_pred is None

    def test_flag_overrides(self):
        for flag, technique in (
            ("@magic.", "magic"),
            ("@supplementary_magic_goalid.", "supplementary_magic_goalid"),
            ("@no_rewriting.", "none"),
        ):
            module = parse_module(
                f"""
                module tc.
                export path(bf).
                {flag}
                path(X, Y) :- edge(X, Y).
                path(X, Y) :- edge(X, Z), path(Z, Y).
                end_module.
                """
            )
            compiled = optimizer().compile(module, "path", "bf")
            assert compiled.rewritten.technique == technique, flag

    def test_factoring_falls_back_when_inapplicable(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            @context_factoring.
            p(X, Y) :- e(X, Y).
            p(X, Y) :- p(X, Z), e(Z, Y).
            end_module.
            """
        )
        compiled = optimizer().compile(module, "p", "bf")
        # left-linear: factoring inapplicable -> supplementary magic fallback
        assert compiled.rewritten.technique == "supplementary_magic"


class TestRuntimeDecisions:
    def test_lazy_default_for_materialized(self):
        compiled = optimizer().compile(TC, "path", "bf")
        assert compiled.lazy

    def test_save_module_forces_eager(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            @save_module.
            p(X, Y) :- e(X, Y).
            end_module.
            """
        )
        compiled = optimizer().compile(module, "p", "bf")
        assert compiled.save_module and not compiled.lazy

    def test_aggregate_selection_forces_eager(self):
        module = parse_module(
            """
            module m.
            export p(bff).
            @aggregate_selection p(X, Y, C) (X, Y) min(C).
            p(X, Y, C) :- e(X, Y, C).
            end_module.
            """
        )
        compiled = optimizer().compile(module, "p", "bff")
        assert not compiled.lazy
        assert compiled.constraints

    def test_psn_flag_selects_strategy(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            @psn.
            p(X, Y) :- e(X, Y).
            p(X, Y) :- e(X, Z), p(Z, Y).
            end_module.
            """
        )
        assert optimizer().compile(module, "p", "bf").strategy == "psn"

    def test_scc_order_is_callees_first(self):
        compiled = optimizer().compile(TC, "path", "bf")
        names = [sorted(p.preds)[0][0] for p in compiled.scc_plans]
        answer_scc = names.index("path_bf")
        magic_scc = next(
            i for i, plan in enumerate(compiled.scc_plans)
            if any(name.startswith("m_") for name, _a in plan.preds)
        )
        assert magic_scc < answer_scc

    def test_index_selection_covers_join_probes(self):
        compiled = optimizer().compile(TC, "path", "bf")
        edge_specs = compiled.base_index_specs.get(("edge", 2), [])
        positions = {
            spec.positions
            for spec in edge_specs
            if isinstance(spec, ArgumentIndexSpec)
        }
        assert (0,) in positions  # edge probed with bound first argument

    def test_constraints_mapped_to_adorned_names(self):
        module = parse_module(
            """
            module m.
            export best(bff).
            @aggregate_selection cost(X, Y, C) (X, Y) min(C).
            cost(X, Y, C) :- e(X, Y, C).
            cost(X, Y, C) :- e(X, Z, C1), cost(Z, Y, C2), C = C1 + C2.
            best(X, Y, C) :- cost(X, Y, C).
            end_module.
            """
        )
        compiled = optimizer().compile(module, "best", "bff")
        constrained = {name for (name, _arity), _sel in compiled.constraints}
        assert constrained  # at least the adorned cost relation
        assert all(name.startswith("cost") for name in constrained)

    def test_compiled_forms_cached_per_query_form(self):
        session = Session()
        session.consult_string(
            "edge(1, 2)."
            + """
            module tc.
            export path(bf, ff).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        first = session.modules.compiled_form("tc", "path", "bf")
        again = session.modules.compiled_form("tc", "path", "bf")
        other = session.modules.compiled_form("tc", "path", "ff")
        assert first is again
        assert first is not other
