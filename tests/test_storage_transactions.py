"""Transaction semantics end-to-end: persistent relations under
begin/commit/abort, and serde ordering properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relations import Tuple
from repro.storage import BufferPool, PersistentRelation, StorageServer
from repro.storage.serde import sort_key
from repro.terms import Atom, Double, Int, Str


class TestTransactionalRelation:
    def _setup(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=16)
        relation = PersistentRelation("acct", 2, pool)
        for i in range(20):
            relation.insert(Tuple((Int(i), Int(100))))
        pool.flush_all()
        return server, pool, relation

    def test_commit_makes_inserts_durable(self, tmp_path):
        server, pool, relation = self._setup(tmp_path)
        server.begin_transaction()
        relation.insert(Tuple((Int(99), Int(5))))
        pool.flush_all()
        server.commit_transaction()
        server.close()

        server2 = StorageServer(str(tmp_path))
        pool2 = BufferPool(server2, capacity=16)
        relation2 = PersistentRelation("acct", 2, pool2)
        assert len(relation2) == 21
        server2.close()

    def test_abort_rolls_back_page_writes(self, tmp_path):
        server, pool, relation = self._setup(tmp_path)
        server.begin_transaction()
        relation.insert(Tuple((Int(99), Int(5))))
        relation.delete(Tuple((Int(3), Int(100))))
        pool.flush_all()  # writes reach the server inside the transaction
        pool.drop_all()
        server.abort_transaction()
        server.close()

        server2 = StorageServer(str(tmp_path))
        pool2 = BufferPool(server2, capacity=16)
        relation2 = PersistentRelation("acct", 2, pool2)
        values = sorted(t[0].value for t in relation2.scan())
        assert values == list(range(20))  # insert undone, delete undone
        server2.close()

    def test_crash_during_transaction_recovers(self, tmp_path):
        server, pool, relation = self._setup(tmp_path)
        server.begin_transaction()
        relation.insert(Tuple((Int(99), Int(5))))
        pool.flush_all()
        server.close()  # crash with journal on disk

        recovered = StorageServer(str(tmp_path))
        pool2 = BufferPool(recovered, capacity=16)
        relation2 = PersistentRelation("acct", 2, pool2)
        assert len(relation2) == 20
        recovered.close()


class TestSerdeOrderProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        left=st.integers(-1000, 1000),
        right=st.integers(-1000, 1000),
    )
    def test_int_key_order_matches_value_order(self, left, right):
        assert (sort_key([Int(left)]) < sort_key([Int(right)])) == (left < right)

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.text("abcdef", max_size=6),
        right=st.text("abcdef", max_size=6),
    )
    def test_string_key_order_matches_lexicographic(self, left, right):
        assert (sort_key([Str(left)]) < sort_key([Str(right)])) == (left < right)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 50), st.sampled_from("abc")),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    def test_btree_iteration_order_is_key_order(self, tmp_path_factory, rows):
        directory = tmp_path_factory.mktemp("ordered")
        server = StorageServer(str(directory))
        try:
            pool = BufferPool(server, capacity=32)
            relation = PersistentRelation("r", 2, pool)
            relation.create_index([0, 1])
            for number, letter in rows:
                relation.insert(Tuple((Int(number), Atom(letter))))
            got = [
                (t[0].value, t[1].name)
                for t in relation.scan_ordered([0, 1])
            ]
            assert got == sorted(rows)
        finally:
            server.close()
