"""End-to-end integration tests: parser → optimizer → evaluator → answers.

Each test runs a complete program through a fresh :class:`Session`,
exercising the full stack the way the paper's own examples do.
"""

import pytest

from repro import Session
from repro.errors import ModuleError

CHAIN = "".join(f"edge({i}, {i+1}). " for i in range(1, 10))

TC_MODULE = """
module tc.
export path(bf, fb, ff, bb).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


@pytest.fixture
def tc_session():
    session = Session()
    session.consult_string(CHAIN + TC_MODULE)
    return session


class TestTransitiveClosure:
    def test_bound_free(self, tc_session):
        answers = sorted(a["X"] for a in tc_session.query("path(3, X)"))
        assert answers == [4, 5, 6, 7, 8, 9, 10]

    def test_free_bound(self, tc_session):
        answers = sorted(a["X"] for a in tc_session.query("path(X, 4)"))
        assert answers == [1, 2, 3]

    def test_free_free(self, tc_session):
        assert len(tc_session.query("path(X, Y)").all()) == 45  # C(10,2)

    def test_bound_bound_hit(self, tc_session):
        assert len(tc_session.query("path(2, 7)").all()) == 1

    def test_bound_bound_miss(self, tc_session):
        assert len(tc_session.query("path(7, 2)").all()) == 0

    def test_repeated_variable_query(self, tc_session):
        """path(X, X): no cycles in a chain."""
        assert len(tc_session.query("path(X, X)").all()) == 0

    def test_magic_is_selective(self):
        """The magic rewriting must not compute unreachable facts."""
        unreachable_chain = "".join(
            f"edge({i}, {i+1}). " for i in range(100, 130)
        )
        source = "edge(1, 2). edge(2, 3). " + unreachable_chain + TC_MODULE
        session = Session()
        session.consult_string(source)
        session.query("path(1, X)").all()
        inserted = session.stats.facts_inserted
        session2 = Session()
        session2.consult_string(source)
        session2.query("path(X, Y)").all()
        assert inserted < session2.stats.facts_inserted / 5

    def test_cycle_terminates(self):
        session = Session()
        session.consult_string(
            "edge(1, 2). edge(2, 3). edge(3, 1)." + TC_MODULE
        )
        answers = sorted(a["X"] for a in session.query("path(1, X)"))
        assert answers == [1, 2, 3]


class TestRewritingVariants:
    GRAPH = "edge(1, 2). edge(2, 3). edge(3, 4). edge(2, 4). edge(4, 5)."

    def _run(self, flag):
        session = Session()
        session.consult_string(
            self.GRAPH
            + f"""
            module tc.
            export path(bf).
            {flag}
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        return sorted(a["Y"] for a in session.query("path(2, Y)"))

    def test_all_techniques_agree(self):
        expected = [3, 4, 4, 5, 5, 5]  # set semantics: dedup below
        results = {
            flag: self._run(flag)
            for flag in (
                "",  # default: supplementary magic
                "@magic.",
                "@supplementary_magic_goalid.",
                "@no_rewriting.",
                "@context_factoring.",
            )
        }
        baseline = results[""]
        assert baseline == sorted(set([3, 4, 5]))
        for flag, answers in results.items():
            assert answers == baseline, f"{flag} disagrees"

    def test_right_linear_factoring_agrees(self):
        def run(flag):
            session = Session()
            session.consult_string(
                self.GRAPH
                + f"""
                module tc.
                export path(bf).
                {flag}
                path(X, Y) :- edge(X, Y).
                path(X, Y) :- edge(X, Z), path(Z, Y).
                end_module.
                """
            )
            return sorted(a["Y"] for a in session.query("path(1, Y)"))

        assert run("@context_factoring.") == run("")

    def test_psn_strategy_agrees(self):
        session = Session()
        session.consult_string(
            self.GRAPH
            + """
            module tc.
            export path(bf).
            @psn.
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("path(1, Y)")) == [2, 3, 4, 5]


class TestMutualRecursion:
    def test_even_odd_chain(self):
        session = Session()
        session.consult_string(
            "next(0, 1). next(1, 2). next(2, 3). next(3, 4). next(4, 5)."
            """
            module parity.
            export even(b).
            export odd(b).
            even(0).
            even(X) :- next(Y, X), odd(Y).
            odd(X) :- next(Y, X), even(Y).
            end_module.
            """
        )
        assert len(session.query("even(4)").all()) == 1
        assert len(session.query("even(3)").all()) == 0
        assert len(session.query("odd(3)").all()) == 1

    def test_same_generation(self):
        session = Session()
        session.consult_string(
            """
            parent(a, b). parent(a, c).
            parent(b, d). parent(b, e). parent(c, f).

            module sg.
            export sg(bf).
            sg(X, X) :- person(X).
            sg(X, Y) :- parent(PX, X), sg(PX, PY), parent(PY, Y).
            end_module.

            person(a). person(b). person(c). person(d). person(e). person(f).
            """
        )
        answers = sorted(a["Y"] for a in session.query("sg(d, Y)"))
        assert answers == ["d", "e", "f"]


class TestNegation:
    def test_stratified_negation(self):
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3).
            node(1). node(2). node(3). node(4).

            module unreach.
            export unreachable(f).
            export reach(f).
            reach(1).
            reach(Y) :- reach(X), edge(X, Y).
            unreachable(X) :- node(X), not reach(X).
            end_module.
            """
        )
        answers = sorted(a["X"] for a in session.query("unreachable(X)"))
        assert answers == [4]

    def test_negation_of_base_relation(self):
        session = Session()
        session.consult_string(
            """
            likes(john, pizza). likes(mary, sushi).
            person(john). person(mary). person(bob).

            module m.
            export nopizza(f).
            nopizza(P) :- person(P), not likes(P, pizza).
            end_module.
            """
        )
        answers = sorted(a["P"] for a in session.query("nopizza(P)"))
        assert answers == ["bob", "mary"]

    def test_win_move_acyclic_via_ordered_search(self):
        """The classic modularly stratified win/move game."""
        session = Session()
        session.consult_string(
            """
            move(a, b). move(b, c). move(a, c). move(c, d).

            module game.
            export win(b).
            @ordered_search.
            win(X) :- move(X, Y), not win(Y).
            end_module.
            """
        )
        # d has no moves: lost. c -> d(lost): won. b -> c(won): lost.
        # a -> b(lost): won.
        assert len(session.query("win(a)").all()) == 1
        assert len(session.query("win(b)").all()) == 0
        assert len(session.query("win(c)").all()) == 1
        assert len(session.query("win(d)").all()) == 0


class TestAggregation:
    def test_count_per_group(self):
        session = Session()
        session.consult_string(
            """
            works(ann, sales). works(bob, sales). works(cal, eng).

            module m.
            export headcount(ff).
            headcount(D, count(<E>)) :- works(E, D).
            end_module.
            """
        )
        rows = {(a["D"], a.tuple.args[1].value) for a in session.query("headcount(D, N)")}
        assert rows == {("sales", 2), ("eng", 1)}

    def test_sum_and_max(self):
        session = Session()
        session.consult_string(
            """
            sale(east, 10). sale(east, 5). sale(west, 7).

            module m.
            export totals(ff).
            export peak(ff).
            totals(R, sum(<V>)) :- sale(R, V).
            peak(R, max(<V>)) :- sale(R, V).
            end_module.
            """
        )
        totals = {(a["R"], a["T"]) for a in session.query("totals(R, T)")}
        assert totals == {("east", 15), ("west", 7)}
        peaks = {(a["R"], a["V"]) for a in session.query("peak(R, V)")}
        assert peaks == {("east", 10), ("west", 7)}

    def test_aggregation_over_recursion(self):
        """min over a recursive predicate: aggregation stratum follows the
        recursive stratum."""
        session = Session()
        session.consult_string(
            """
            edge(a, b, 1). edge(b, c, 2). edge(a, c, 9).

            module m.
            export best(bbf).
            cost(X, Y, C) :- edge(X, Y, C).
            cost(X, Y, C) :- edge(X, Z, C1), cost(Z, Y, C2), C = C1 + C2.
            best(X, Y, min(<C>)) :- cost(X, Y, C).
            end_module.
            """
        )
        answers = session.query("best(a, c, C)").all()
        assert [a["C"] for a in answers] == [3]

    def test_figure_3_shortest_path_full(self):
        """The complete paper Figure 3 program on a cyclic graph."""
        session = Session()
        session.consult_string(
            """
            edge(a, b, 1). edge(b, c, 2). edge(a, c, 5). edge(c, a, 1).
            edge(c, d, 1).

            module s_p.
            export s_p(bfff, ffff).
            @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
            @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
            s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
            s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
            p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                               append([edge(Z, Y)], P, P1), C1 = C + EC.
            p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
            end_module.
            """
        )
        costs = {a["Y"]: a["C"] for a in session.query("s_p(a, Y, P, C)")}
        assert costs == {"a": 4, "b": 1, "c": 3, "d": 4}

    def test_aggregate_selection_prunes(self):
        """With min-cost selection the relation keeps only optimal facts."""
        session = Session()
        session.consult_string(
            """
            edge(a, b, 5). edge(a, b, 2). edge(a, b, 9).

            module m.
            export cheapest(bff).
            @aggregate_selection c(X, Y, C) (X, Y) min(C).
            c(X, Y, C) :- edge(X, Y, C).
            cheapest(X, Y, C) :- c(X, Y, C).
            end_module.
            """
        )
        answers = session.query("cheapest(a, Y, C)").all()
        assert [(a["Y"], a["C"]) for a in answers] == [("b", 2)]


class TestNonGroundFacts:
    def test_universal_fact_answers_any_query(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export ok(b).
            ok(X) :- always(X).
            end_module.

            always(Anything).
            """
        )
        assert len(session.query("ok(42)").all()) == 1
        assert len(session.query("ok(john)").all()) == 1

    def test_partially_ground_fact(self):
        session = Session()
        session.consult_string("pair(1, X).")
        answers = session.query("pair(1, 7)").all()
        assert len(answers) == 1
        assert len(session.query("pair(2, 7)").all()) == 0

    def test_non_ground_derived_facts(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export p(ff).
            p(X, Y) :- q(X, Y).
            end_module.

            q(1, Z).
            """
        )
        answers = session.query("p(1, W)").all()
        assert len(answers) == 1


class TestBuiltinsInRules:
    def test_arithmetic_chain(self):
        session = Session()
        session.consult_string(
            """
            base(1). base(2). base(3).

            module m.
            export doubled(f).
            doubled(Y) :- base(X), Y = X * 2.
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("doubled(Y)")) == [2, 4, 6]

    def test_comparison_filter(self):
        session = Session()
        session.consult_string(
            """
            n(1). n(5). n(9).

            module m.
            export big(f).
            big(X) :- n(X), X > 3.
            end_module.
            """
        )
        assert sorted(a["X"] for a in session.query("big(X)")) == [5, 9]

    def test_list_builtins_in_recursion(self):
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3).

            module m.
            export trail(bff).
            trail(X, Y, [X, Y]) :- edge(X, Y).
            trail(X, Y, P) :- edge(X, Z), trail(Z, Y, P0), append([X], P0, P).
            end_module.
            """
        )
        answers = session.query("trail(1, 3, P)").all()
        assert len(answers) == 1
        assert answers[0]["P"] == [1, 2, 3]


class TestModuleInteraction:
    def test_module_calls_module(self):
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3). edge(3, 4).

            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.

            module far.
            export far_from_one(f).
            far_from_one(Y) :- path(1, Y), Y > 2.
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("far_from_one(Y)")) == [3, 4]

    def test_pipelined_calls_materialized(self):
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3).

            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.

            module wrap.
            export wpath(bf).
            @pipelining.
            wpath(X, Y) :- path(X, Y).
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("wpath(1, Y)")) == [2, 3]

    def test_materialized_calls_pipelined(self):
        session = Session()
        session.consult_string(
            """
            item(1). item(2). item(3).

            module double.
            export twice(bf).
            @pipelining.
            twice(X, Y) :- Y = X * 2.
            end_module.

            module user.
            export result(f).
            result(Y) :- item(X), twice(X, Y).
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("result(Y)")) == [2, 4, 6]

    def test_export_conflict_rejected(self):
        session = Session()
        with pytest.raises(ModuleError):
            session.consult_string(
                """
                module a.
                export p(f).
                p(X) :- q(X).
                end_module.

                module b.
                export p(f).
                p(X) :- r(X).
                end_module.
                """
            )

    def test_export_of_undefined_pred_rejected(self):
        session = Session()
        with pytest.raises(ModuleError):
            session.consult_string(
                "module m. export ghost(f). p(X) :- q(X). end_module."
            )


class TestPipelining:
    def test_pipelined_tc_right_recursive(self):
        session = Session()
        session.consult_string(
            """
            edge(1, 2). edge(2, 3). edge(3, 4).

            module tc.
            export path(bf).
            @pipelining.
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("path(1, Y)")) == [2, 3, 4]

    def test_pipelined_duplicates_not_eliminated(self):
        """Pipelining does not store or dedup: two proofs, two answers."""
        session = Session()
        session.consult_string(
            """
            e(1, 2). m(2). m2(2).

            module m_.
            export p(b).
            @pipelining.
            p(X) :- e(Y, X), m(X).
            p(X) :- e(Y, X), m2(X).
            end_module.
            """
        )
        assert len(session.query("p(2)").all()) == 2

    def test_pipelined_negation(self):
        session = Session()
        session.consult_string(
            """
            good(1). good(2). all_(1). all_(2). all_(3).

            module m.
            export bad(f).
            @pipelining.
            bad(X) :- all_(X), not good(X).
            end_module.
            """
        )
        assert sorted(a["X"] for a in session.query("bad(X)")) == [3]

    def test_pipelined_first_answer_without_full_computation(self):
        session = Session()
        lines = ["edge(%d, %d)." % (i, i + 1) for i in range(200)]
        session.consult_string(
            "\n".join(lines)
            + """
            module tc.
            export path(bf).
            @pipelining.
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        result = session.query("path(0, Y)")
        first = result.get_next()
        assert first is not None
        # the first proof needed a single inference, not the whole closure
        assert session.stats.inferences <= 5


class TestSaveModule:
    def test_answers_accumulate_and_reuse(self):
        session = Session()
        session.consult_string(
            "".join(f"edge({i}, {i+1}). " for i in range(50))
            + """
            module tc.
            export path(bf).
            @save_module.
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        assert len(session.query("path(25, Y)").all()) == 25
        first_cost = session.stats.rule_applications
        # second call hits retained state: answers to path(30, _) were
        # already derived while answering path(25, _)
        assert len(session.query("path(30, Y)").all()) == 20
        second_cost = session.stats.rule_applications - first_cost
        assert second_cost < first_cost / 2

    def test_fresh_module_recomputes(self):
        session = Session()
        session.consult_string(
            "".join(f"edge({i}, {i+1}). " for i in range(50))
            + TC_MODULE
        )
        session.query("path(25, Y)").all()
        first_cost = session.stats.rule_applications
        session.query("path(25, Y)").all()
        second_cost = session.stats.rule_applications - first_cost
        assert second_cost >= first_cost * 0.8  # no retained state


class TestMultisetSemantics:
    def test_multiset_counts_derivations(self):
        session = Session()
        session.consult_string(
            """
            parent(a, b). parent(c, b).

            module m.
            export haskid(f).
            @multiset haskid.
            haskid(yes) :- parent(X, Y).
            end_module.
            """
        )
        # two derivations of haskid(yes), both kept under multiset semantics
        assert len(session.query("haskid(Z)").all()) == 2

    def test_set_semantics_dedups(self):
        session = Session()
        session.consult_string(
            """
            parent(a, b). parent(c, b).

            module m.
            export haskid(f).
            haskid(yes) :- parent(X, Y).
            end_module.
            """
        )
        assert len(session.query("haskid(Z)").all()) == 1
