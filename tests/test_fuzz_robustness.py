"""Fuzz tests (ISSUE 4, satellite 2): malformed wire frames against the
server, mutated tuple batches against the storage codec, and mutated source
against the parser.  Every input must produce a *clean* error —
:class:`ProtocolError`/:class:`StorageError`/:class:`ParseError` — and the
server must keep answering real clients afterwards (no thread death)."""

import json
import random
import socket
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro import ParseError, Session, StorageError
from repro.client import RemoteSession
from repro.language.parser import parse_program
from repro.server import CoralServer
from repro.server.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, encode_frame
from repro.storage.serde import decode_batch, encode_batch
from repro.terms import to_arg

PROGRAM = """
edge(1, 2). edge(2, 3).

module tc.
export path(bf, ff).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


# ---------------------------------------------------------------------------
# wire-frame fuzz against a live server
# ---------------------------------------------------------------------------


def _hello() -> bytes:
    return encode_frame({"op": "HELLO", "version": PROTOCOL_VERSION})


_MALFORMED_PAYLOADS = [
    # truncated length prefixes
    b"",
    b"\x00",
    b"\x00\x00\x00",
    # total below the 4-byte header-length minimum
    struct.pack(">I", 0),
    struct.pack(">I", 3),
    # implausible length prefix: must be refused without a 4 GiB allocation
    struct.pack(">I", 0xFFFFFFFF),
    struct.pack(">I", MAX_FRAME_BYTES + 1),
    # hdrlen larger than the payload it lives in
    struct.pack(">II", 8, 400) + b"asdf",
    # header is not JSON
    struct.pack(">II", 4 + 7, 7) + b"{not js",
    # header is JSON but not an object
    struct.pack(">II", 4 + 5, 5) + b"[1,2]",
    # valid frame, unknown op
    encode_frame({"op": "EXPLODE"}),
    # valid frame, op is not a string
    encode_frame({"op": 7}),
    # missing op entirely
    encode_frame({"hello": "world"}),
    # random garbage
    bytes(random.Random(0).randrange(256) for _ in range(64)),
]


def _poke_server(address, payload: bytes, after_hello: bool) -> None:
    """Write a raw payload at the server and read whatever comes back."""
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.settimeout(5.0)
        try:
            if after_hello:
                sock.sendall(_hello())
                sock.recv(4096)
            sock.sendall(payload)
            # half-close so a server waiting for the rest of a truncated
            # frame sees EOF instead of stalling until its read timeout
            sock.shutdown(socket.SHUT_WR)
            sock.recv(4096)  # error frame or EOF — both are acceptable
        except (ConnectionError, socket.timeout, OSError):
            pass  # the server may slam the door; it must not die


@pytest.mark.parametrize("after_hello", [False, True])
def test_malformed_frames_do_not_kill_the_server(after_hello):
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        for payload in _MALFORMED_PAYLOADS:
            _poke_server(server.address, payload, after_hello)
            # liveness: a well-behaved client still gets answers
            with RemoteSession(*server.address) as db:
                assert sorted(db.query("path(1, Y)").tuples()) == [
                    (1, 2), (1, 3),
                ]


def test_oversized_batch_body_is_rejected_cleanly():
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        # a syntactically valid frame whose body claims an absurd tuple count
        bogus_body = b"CB" + struct.pack(">BI", 1, 0x7FFFFFFF)
        header = json.dumps({"op": "INSERT", "pred": "edge"}).encode()
        frame = (
            struct.pack(">II", 4 + len(header) + len(bogus_body), len(header))
            + header
            + bogus_body
        )
        _poke_server(server.address, frame, after_hello=True)
        with RemoteSession(*server.address) as db:
            assert db.query("path(2, Y)").tuples() == [(2, 3)]


def test_fuzzed_random_frames_seeded_sweep():
    """200 random byte blobs, none may take the server down."""
    rng = random.Random(1234)
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        for _ in range(200):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 80)))
            _poke_server(server.address, blob, after_hello=rng.random() < 0.5)
        with RemoteSession(*server.address) as db:
            assert len(db.query("path(X, Y)").tuples()) == 3


# ---------------------------------------------------------------------------
# storage codec fuzz: decode_batch must raise StorageError, nothing else
# ---------------------------------------------------------------------------


@given(st.binary(max_size=256))
@settings(max_examples=300, deadline=None)
def test_decode_batch_arbitrary_bytes(data):
    try:
        rows = decode_batch(data)
    except StorageError:
        return
    assert isinstance(rows, list)


@given(st.data())
@settings(max_examples=200, deadline=None)
def test_decode_batch_mutated_valid_batch(data):
    valid = bytearray(
        encode_batch(
            [
                [to_arg(1), to_arg("two")],
                [to_arg(3.5), to_arg("four")],
            ]
        )
    )
    mutation = data.draw(
        st.sampled_from(["truncate", "flip", "extend", "zero"])
    )
    if mutation == "truncate":
        valid = valid[: data.draw(st.integers(0, len(valid) - 1))]
    elif mutation == "flip":
        pos = data.draw(st.integers(0, len(valid) - 1))
        valid[pos] ^= data.draw(st.integers(1, 255))
    elif mutation == "extend":
        valid.extend(data.draw(st.binary(min_size=1, max_size=16)))
    else:
        pos = data.draw(st.integers(0, len(valid) - 1))
        valid[pos:] = bytes(len(valid) - pos)
    try:
        rows = decode_batch(bytes(valid))
    except StorageError:
        return
    assert isinstance(rows, list)


# ---------------------------------------------------------------------------
# parser fuzz: mutated source must raise ParseError, nothing else
# ---------------------------------------------------------------------------


_CORPUS = [
    PROGRAM,
    "p(1). p(2).\nmodule m.\nexport q(f).\nq(X) :- p(X).\nend_module.\n",
    'fact("str", 3.5, f(g(X), [1, 2 | T])).\n',
    "module agg.\nexport best(ff).\nbest(G, max(<V>)) :- item(G, V).\nend_module.\n",
    "module n.\n@psn.\nexport ok(ff).\nok(X, Y) :- e(X, Y), not bad(X).\nend_module.\n",
]


def _mutate(rng: random.Random, source: str) -> str:
    text = list(source)
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(["delete", "insert", "swap", "truncate", "dupline"])
        if not text:
            break
        if kind == "delete":
            del text[rng.randrange(len(text))]
        elif kind == "insert":
            junk = rng.choice(").,:-([]|@\"'\x00~%")
            text.insert(rng.randrange(len(text) + 1), junk)
        elif kind == "swap":
            i, j = rng.randrange(len(text)), rng.randrange(len(text))
            text[i], text[j] = text[j], text[i]
        elif kind == "truncate":
            del text[rng.randrange(len(text)):]
        else:
            lines = "".join(text).splitlines(keepends=True)
            if lines:
                lines.insert(
                    rng.randrange(len(lines)), rng.choice(lines)
                )
                text = list("".join(lines))
    return "".join(text)


@pytest.mark.parametrize("seed", range(40))
def test_parser_survives_mutated_source(seed):
    rng = random.Random(seed)
    for source in _CORPUS:
        for _ in range(10):
            mutated = _mutate(rng, source)
            try:
                parse_program(mutated)
            except ParseError:
                pass  # the one acceptable failure mode


def test_mutated_consult_never_kills_the_server():
    """CONSULT with broken source returns a clean remote ParseError and the
    connection stays usable."""
    rng = random.Random(99)
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        with RemoteSession(*server.address) as db:
            for _ in range(25):
                mutated = _mutate(rng, _CORPUS[1])
                try:
                    db.consult_string(mutated)
                except ParseError:
                    pass
                except Exception as exc:  # noqa: BLE001 - the assertion
                    from repro import CoralError

                    assert isinstance(exc, CoralError), exc
            assert sorted(db.query("path(1, Y)").tuples()) == [(1, 2), (1, 3)]
