"""Fuzz tests (ISSUE 4, satellite 2): malformed wire frames against the
server, mutated tuple batches against the storage codec, and mutated source
against the parser.  Every input must produce a *clean* error —
:class:`ProtocolError`/:class:`StorageError`/:class:`ParseError` — and the
server must keep answering real clients afterwards (no thread death)."""

import json
import random
import socket
import struct
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro import ParseError, Session, StorageError
from repro.client import RemoteSession
from repro.language.parser import parse_program
from repro.replication import KIND_INSERT, encode_mutation
from repro.replication.changelog import record_crc
from repro.server import CoralServer
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.storage.serde import decode_batch, encode_batch
from repro.terms import to_arg

PROGRAM = """
edge(1, 2). edge(2, 3).

module tc.
export path(bf, ff).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


# ---------------------------------------------------------------------------
# wire-frame fuzz against a live server
# ---------------------------------------------------------------------------


def _hello() -> bytes:
    return encode_frame({"op": "HELLO", "version": PROTOCOL_VERSION})


_MALFORMED_PAYLOADS = [
    # truncated length prefixes
    b"",
    b"\x00",
    b"\x00\x00\x00",
    # total below the 4-byte header-length minimum
    struct.pack(">I", 0),
    struct.pack(">I", 3),
    # implausible length prefix: must be refused without a 4 GiB allocation
    struct.pack(">I", 0xFFFFFFFF),
    struct.pack(">I", MAX_FRAME_BYTES + 1),
    # hdrlen larger than the payload it lives in
    struct.pack(">II", 8, 400) + b"asdf",
    # header is not JSON
    struct.pack(">II", 4 + 7, 7) + b"{not js",
    # header is JSON but not an object
    struct.pack(">II", 4 + 5, 5) + b"[1,2]",
    # valid frame, unknown op
    encode_frame({"op": "EXPLODE"}),
    # valid frame, op is not a string
    encode_frame({"op": 7}),
    # missing op entirely
    encode_frame({"hello": "world"}),
    # random garbage
    bytes(random.Random(0).randrange(256) for _ in range(64)),
]


def _poke_server(address, payload: bytes, after_hello: bool) -> None:
    """Write a raw payload at the server and read whatever comes back."""
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.settimeout(5.0)
        try:
            if after_hello:
                sock.sendall(_hello())
                sock.recv(4096)
            sock.sendall(payload)
            # half-close so a server waiting for the rest of a truncated
            # frame sees EOF instead of stalling until its read timeout
            sock.shutdown(socket.SHUT_WR)
            sock.recv(4096)  # error frame or EOF — both are acceptable
        except (ConnectionError, socket.timeout, OSError):
            pass  # the server may slam the door; it must not die


@pytest.mark.parametrize("after_hello", [False, True])
def test_malformed_frames_do_not_kill_the_server(after_hello):
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        for payload in _MALFORMED_PAYLOADS:
            _poke_server(server.address, payload, after_hello)
            # liveness: a well-behaved client still gets answers
            with RemoteSession(*server.address) as db:
                assert sorted(db.query("path(1, Y)").tuples()) == [
                    (1, 2), (1, 3),
                ]


def test_oversized_batch_body_is_rejected_cleanly():
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        # a syntactically valid frame whose body claims an absurd tuple count
        bogus_body = b"CB" + struct.pack(">BI", 1, 0x7FFFFFFF)
        header = json.dumps({"op": "INSERT", "pred": "edge"}).encode()
        frame = (
            struct.pack(">II", 4 + len(header) + len(bogus_body), len(header))
            + header
            + bogus_body
        )
        _poke_server(server.address, frame, after_hello=True)
        with RemoteSession(*server.address) as db:
            assert db.query("path(2, Y)").tuples() == [(2, 3)]


def test_fuzzed_random_frames_seeded_sweep():
    """200 random byte blobs, none may take the server down."""
    rng = random.Random(1234)
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        for _ in range(200):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 80)))
            _poke_server(server.address, blob, after_hello=rng.random() < 0.5)
        with RemoteSession(*server.address) as db:
            assert len(db.query("path(X, Y)").tuples()) == 3


# ---------------------------------------------------------------------------
# storage codec fuzz: decode_batch must raise StorageError, nothing else
# ---------------------------------------------------------------------------


@given(st.binary(max_size=256))
@settings(max_examples=300, deadline=None)
def test_decode_batch_arbitrary_bytes(data):
    try:
        rows = decode_batch(data)
    except StorageError:
        return
    assert isinstance(rows, list)


@given(st.data())
@settings(max_examples=200, deadline=None)
def test_decode_batch_mutated_valid_batch(data):
    valid = bytearray(
        encode_batch(
            [
                [to_arg(1), to_arg("two")],
                [to_arg(3.5), to_arg("four")],
            ]
        )
    )
    mutation = data.draw(
        st.sampled_from(["truncate", "flip", "extend", "zero"])
    )
    if mutation == "truncate":
        valid = valid[: data.draw(st.integers(0, len(valid) - 1))]
    elif mutation == "flip":
        pos = data.draw(st.integers(0, len(valid) - 1))
        valid[pos] ^= data.draw(st.integers(1, 255))
    elif mutation == "extend":
        valid.extend(data.draw(st.binary(min_size=1, max_size=16)))
    else:
        pos = data.draw(st.integers(0, len(valid) - 1))
        valid[pos:] = bytes(len(valid) - pos)
    try:
        rows = decode_batch(bytes(valid))
    except StorageError:
        return
    assert isinstance(rows, list)


# ---------------------------------------------------------------------------
# parser fuzz: mutated source must raise ParseError, nothing else
# ---------------------------------------------------------------------------


_CORPUS = [
    PROGRAM,
    "p(1). p(2).\nmodule m.\nexport q(f).\nq(X) :- p(X).\nend_module.\n",
    'fact("str", 3.5, f(g(X), [1, 2 | T])).\n',
    "module agg.\nexport best(ff).\nbest(G, max(<V>)) :- item(G, V).\nend_module.\n",
    "module n.\n@psn.\nexport ok(ff).\nok(X, Y) :- e(X, Y), not bad(X).\nend_module.\n",
]


def _mutate(rng: random.Random, source: str) -> str:
    text = list(source)
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(["delete", "insert", "swap", "truncate", "dupline"])
        if not text:
            break
        if kind == "delete":
            del text[rng.randrange(len(text))]
        elif kind == "insert":
            junk = rng.choice(").,:-([]|@\"'\x00~%")
            text.insert(rng.randrange(len(text) + 1), junk)
        elif kind == "swap":
            i, j = rng.randrange(len(text)), rng.randrange(len(text))
            text[i], text[j] = text[j], text[i]
        elif kind == "truncate":
            del text[rng.randrange(len(text)):]
        else:
            lines = "".join(text).splitlines(keepends=True)
            if lines:
                lines.insert(
                    rng.randrange(len(lines)), rng.choice(lines)
                )
                text = list("".join(lines))
    return "".join(text)


@pytest.mark.parametrize("seed", range(40))
def test_parser_survives_mutated_source(seed):
    rng = random.Random(seed)
    for source in _CORPUS:
        for _ in range(10):
            mutated = _mutate(rng, source)
            try:
                parse_program(mutated)
            except ParseError:
                pass  # the one acceptable failure mode


def test_mutated_consult_never_kills_the_server():
    """CONSULT with broken source returns a clean remote ParseError and the
    connection stays usable."""
    rng = random.Random(99)
    session = Session()
    session.consult_string(PROGRAM)
    with CoralServer(session, port=0) as server:
        with RemoteSession(*server.address) as db:
            for _ in range(25):
                mutated = _mutate(rng, _CORPUS[1])
                try:
                    db.consult_string(mutated)
                except ParseError:
                    pass
                except Exception as exc:  # noqa: BLE001 - the assertion
                    from repro import CoralError

                    assert isinstance(exc, CoralError), exc
            assert sorted(db.query("path(1, Y)").tuples()) == [(1, 2), (1, 3)]


# ---------------------------------------------------------------------------
# replication stream fuzz (ISSUE 6): garbage on either side of the stream.
# The contract: a malformed REPL frame may cost the one connection it rode
# in on — never the server, never the replica's stream thread, and never a
# silently diverged replica.
# ---------------------------------------------------------------------------


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def _handshake(address):
    sock = socket.create_connection(address, timeout=5.0)
    sock.settimeout(5.0)
    write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
    frame = read_frame(sock)
    assert frame is not None and frame[0].get("ok")
    return sock


_BAD_REPL_HELLOS = [
    {"op": "REPL_HELLO", "last_seq": -3},  # negative sequence
    {"op": "REPL_HELLO", "last_seq": 999},  # claims to be ahead of the primary
    {"op": "REPL_HELLO", "last_seq": "junk"},  # not an integer at all
    {"op": "REPL_HELLO", "last_seq": [1, 2]},  # nor is this
    {"op": "REPL_ACK", "seq": 1},  # stream op outside a stream
]


def test_garbage_repl_hello_gets_a_clean_refusal():
    """Every malformed REPL_HELLO is answered with ok=False on a connection
    that stays usable, and a real replica still syncs afterwards."""
    primary_session = Session()
    with CoralServer(
        primary_session, port=0, changelog=True, heartbeat=0.05
    ) as primary:
        with RemoteSession(*primary.address) as db:
            db.insert("edge", 1, 2)
        for bad in _BAD_REPL_HELLOS:
            sock = _handshake(primary.address)
            try:
                write_frame(sock, bad)
                frame = read_frame(sock)
                assert frame is not None, f"{bad}: connection died, no answer"
                assert frame[0].get("ok") is False, f"{bad}: was accepted"
                # the same connection still serves ordinary requests
                write_frame(sock, {"op": "STATS"})
                frame = read_frame(sock)
                assert frame is not None and frame[0].get("ok")
            finally:
                sock.close()
        # liveness: a real replica attaches and catches up
        replica = CoralServer(
            Session(), port=0, role="replica",
            replicate_from=primary.address, heartbeat=0.05,
        ).start()
        try:
            assert _wait_until(
                lambda: replica.changelog.last_seq == primary.changelog.last_seq
            )
        finally:
            replica.shutdown()


_GARBAGE_ACKS = [
    ("frame", {"op": "NOT_AN_ACK", "seq": 1}),
    ("frame", {"op": "REPL_ACK", "seq": "junk"}),
    ("frame", {"op": "REPL_ACK", "seq": [1]}),
    ("raw", b"\xff" * 16),
    ("close", None),
]


@pytest.mark.parametrize("mode,ack", _GARBAGE_ACKS)
def test_fake_replica_garbage_acks_drop_only_that_stream(mode, ack):
    """A fake replica answering REPL_SHIP with garbage loses its stream; the
    primary keeps serving clients and accepts a real replica afterwards."""
    with CoralServer(
        Session(), port=0, changelog=True, heartbeat=0.05
    ) as primary:
        with RemoteSession(*primary.address) as db:
            db.insert("edge", 1, 2)
        sock = _handshake(primary.address)
        try:
            write_frame(
                sock, {"op": "REPL_HELLO", "last_seq": 0, "replica": "evil"}
            )
            frame = read_frame(sock)
            assert frame is not None and frame[0].get("ok")
            frame = read_frame(sock)  # record #1 ships
            assert frame is not None and frame[0].get("op") == "REPL_SHIP"
            if mode == "frame":
                write_frame(sock, ack)
            elif mode == "raw":
                sock.sendall(ack)
            # mode == "close": just hang up mid-stream
        finally:
            sock.close()
        # the evil stream is gone from the primary's books
        assert _wait_until(
            lambda: "evil" not in primary.replication_stats().get("replicas", {})
        )
        # the primary is unharmed: writes, reads, and a real replica work
        with RemoteSession(*primary.address) as db:
            assert db.insert("edge", 2, 3) is True
            assert len(db.query("edge(X, Y)").tuples()) == 2
        replica = CoralServer(
            Session(), port=0, role="replica",
            replicate_from=primary.address, heartbeat=0.05,
        ).start()
        try:
            assert _wait_until(
                lambda: replica.changelog.last_seq == primary.changelog.last_seq
            )
        finally:
            replica.shutdown()


# -- an adversarial primary against a real replica ---------------------------


def _evil_ship(conn, seq, payload, crc=None, kind=KIND_INSERT, pred="edge"):
    header = {
        "op": "REPL_SHIP",
        "seq": seq,
        "kind": kind,
        "pred": pred,
        "crc": record_crc(seq, kind, pred.encode("utf-8"), payload)
        if crc is None
        else crc,
    }
    write_frame(conn, header, payload)
    return read_frame(conn)  # the ack, or None if the replica hung up


def _fresh_row(seq):
    return encode_mutation([[to_arg(seq), to_arg(seq)]])


def _scenario_valid_then_duplicate(conn, last):
    seq = last + 1
    assert _evil_ship(conn, seq, _fresh_row(seq)) is not None
    # re-ship the same record: must be acked and dropped, not re-applied
    assert _evil_ship(conn, seq, _fresh_row(seq)) is not None


def _scenario_gap(conn, last):
    _evil_ship(conn, last + 5, _fresh_row(last + 5))


def _scenario_corrupt_crc(conn, last):
    _evil_ship(conn, last + 1, _fresh_row(last + 1), crc=12345)


def _scenario_garbage_payload(conn, last):
    # the CRC is honest — over garbage — so the *apply* is what fails
    _evil_ship(conn, last + 1, b"\xde\xad\xbe\xef")


def _scenario_bogus_seq_type(conn, last):
    write_frame(
        conn,
        {"op": "REPL_SHIP", "seq": "junk", "kind": 1, "pred": "edge", "crc": 0},
        b"",
    )
    read_frame(conn)


def _scenario_wrong_op(conn, last):
    write_frame(conn, {"op": "QUERY", "query": "edge(X, Y)"})
    read_frame(conn)


def _scenario_torn_frame(conn, last):
    conn.sendall(b"\x00\x00\x01")  # a third of a length prefix, then EOF


_EVIL_SCENARIOS = [
    _scenario_valid_then_duplicate,
    _scenario_gap,
    _scenario_corrupt_crc,
    _scenario_garbage_payload,
    _scenario_bogus_seq_type,
    _scenario_wrong_op,
    _scenario_torn_frame,
]


def _run_evil_primary(listener, scenarios, served):
    """Accept the replica's redials; feed each connection one scenario."""
    while scenarios:
        try:
            conn, _ = listener.accept()
        except OSError:
            return  # listener closed: the test is tearing down
        scenario = scenarios.pop(0)
        try:
            with conn:
                conn.settimeout(5.0)
                if read_frame(conn) is None:  # HELLO
                    continue
                write_frame(
                    conn,
                    {"ok": True, "server": "evil/1", "version": PROTOCOL_VERSION},
                )
                frame = read_frame(conn)  # REPL_HELLO
                if frame is None:
                    continue
                last = int(frame[0].get("last_seq", 0))
                write_frame(conn, {"ok": True, "role": "primary", "last_seq": last})
                scenario(conn, last)
                served.append(scenario.__name__)
        except (OSError, StorageError):
            served.append(scenario.__name__)  # replica slammed the door: fine
    listener.close()


def test_adversarial_primary_never_diverges_or_kills_the_replica():
    """A hostile primary ships duplicates, gaps, corrupt CRCs, undecodable
    payloads, bogus field types, wrong ops, and torn frames.  The replica
    must apply exactly the valid records, keep redialing, and keep serving
    reads — garbage may cost a connection, never the replica."""
    listener = socket.create_server(("127.0.0.1", 0))
    scenarios = list(_EVIL_SCENARIOS)
    served = []
    feeder = threading.Thread(
        target=_run_evil_primary, args=(listener, scenarios, served), daemon=True
    )
    feeder.start()
    replica = CoralServer(
        Session(), port=0, role="replica",
        replicate_from=listener.getsockname(), heartbeat=0.05,
    ).start()
    try:
        assert _wait_until(
            lambda: len(served) == len(_EVIL_SCENARIOS), timeout=30.0
        ), f"evil primary only served {served}"
        # exactly one record (the valid one) was ever applied
        assert _wait_until(lambda: replica.changelog.last_seq == 1)
        assert replica.changelog.last_seq == 1
        # the stream thread is alive and still trying: the reconnect counter
        # keeps climbing now that the evil primary is gone
        before = replica.repl_client.reconnects
        assert _wait_until(
            lambda: replica.repl_client.reconnects > before, timeout=10.0
        ), "replica's stream thread died instead of redialing"
        # and the replica still serves reads of exactly the applied state
        with RemoteSession(*replica.address) as db:
            assert db.query("edge(X, Y)").tuples() == [(1, 1)]
        duplicates = replica.metrics.counter(
            "replication.events", "", ("event",)
        ).value("duplicates")
        assert duplicates >= 1, "the duplicate ship was not detected as one"
    finally:
        replica.shutdown()
        feeder.join(timeout=5.0)
