"""Edge cases across the evaluation stack that the mainline tests don't
exercise: module-local facts, zero-arity predicates, functor-term queries,
long module chains, and numeric corner cases."""

import pytest

from repro import Session


class TestModuleLocalFacts:
    def test_facts_inside_modules(self):
        """A fact in a module is a bodiless rule: it still gets magic-guarded
        and only materializes when demanded."""
        session = Session()
        session.consult_string(
            """
            module config.
            export limit(bf).
            limit(disk, 100).
            limit(cpu, 8).
            end_module.
            """
        )
        assert [a["V"] for a in session.query("limit(cpu, V)")] == [8]
        assert len(session.query("limit(X, Y)").all()) == 2

    def test_module_fact_joins_with_rules(self):
        session = Session()
        session.consult_string(
            """
            usage(disk, 140). usage(cpu, 3).

            module config.
            export over(f).
            limit(disk, 100).
            limit(cpu, 8).
            over(R) :- limit(R, L), usage(R, U), U > L.
            end_module.
            """
        )
        assert [a["R"] for a in session.query("over(R)")] == ["disk"]


class TestZeroArity:
    def test_zero_arity_derived(self):
        session = Session()
        session.consult_string(
            """
            item(1).

            module m.
            export nonempty().
            nonempty :- item(X).
            end_module.
            """
        )
        assert len(session.query("nonempty").all()) == 1

    def test_zero_arity_base_fact(self):
        session = Session()
        session.consult_string("raining.")
        assert len(session.query("raining").all()) == 1
        assert len(session.query("sunny").all()) == 0


class TestFunctorTermQueries:
    def test_query_with_structured_constant(self):
        session = Session()
        session.consult_string(
            "emp(john, addr(main_st, madison)). emp(mary, addr(oak_st, chicago))."
        )
        answers = session.query("emp(X, addr(S, madison))").all()
        assert len(answers) == 1
        assert answers[0]["X"] == "john"

    def test_derived_structured_answers(self):
        session = Session()
        session.consult_string(
            """
            point(1, 2). point(3, 4).

            module m.
            export wrapped(f).
            wrapped(pt(X, Y)) :- point(X, Y).
            end_module.
            """
        )
        terms = {str(a.term("P")) for a in session.query("wrapped(P)")}
        assert terms == {"pt(1, 2)", "pt(3, 4)"}

    def test_nested_functor_unification_in_query(self):
        session = Session()
        session.consult_string("box(wrap(wrap(core))).")
        answers = session.query("box(wrap(wrap(X)))").all()
        assert [a["X"] for a in answers] == ["core"]


class TestModuleChains:
    def test_four_module_chain(self):
        session = Session()
        session.consult_string(
            """
            base(1). base(2). base(3).

            module a.
            export pa(f).
            pa(X) :- base(X).
            end_module.

            module b.
            export pb(f).
            pb(Y) :- pa(X), Y = X * 2.
            end_module.

            module c.
            export pc(f).
            @pipelining.
            pc(Y) :- pb(Y), Y > 2.
            end_module.

            module d.
            export pd(ff).
            pd(Y, count(<X>)) :- pc(X), Y = 1.
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("pc(Y)")) == [4, 6]
        assert session.query("pd(Y, N)").tuples() == [(1, 2)]

    def test_diamond_module_dependencies(self):
        session = Session()
        session.consult_string(
            """
            n(1). n(2).

            module left.
            export pl(f).
            pl(X) :- n(X).
            end_module.

            module right.
            export pr(f).
            pr(Y) :- n(X), Y = X + 10.
            end_module.

            module top.
            export pt(f).
            pt(Z) :- pl(Z).
            pt(Z) :- pr(Z).
            end_module.
            """
        )
        assert sorted(a["Z"] for a in session.query("pt(Z)")) == [1, 2, 11, 12]


class TestNumericCorners:
    def test_negative_numbers_through_arithmetic(self):
        session = Session()
        session.consult_string(
            """
            n(-5). n(3).

            module m.
            export flipped(f).
            flipped(Y) :- n(X), Y = 0 - X.
            end_module.
            """
        )
        assert sorted(a["Y"] for a in session.query("flipped(Y)")) == [-3, 5]

    def test_float_arithmetic(self):
        session = Session()
        session.consult_string(
            """
            price(2.5).

            module m.
            export taxed(f).
            taxed(Y) :- price(X), Y = X * 1.1.
            end_module.
            """
        )
        answers = session.query("taxed(Y)").all()
        assert answers[0]["Y"] == pytest.approx(2.75)

    def test_integer_division_produces_float(self):
        session = Session()
        session.consult_string(
            "module m. export half(f). half(Y) :- Y = 7 / 2, one(Z). end_module. one(1)."
        )
        # body order: the '=' is first — guard rejects? (`=` before any scan
        # is fine in the interpreter; only compiled mode restricts it)
        assert [a["Y"] for a in session.query("half(Y)")] == [3.5]

    def test_huge_integers(self):
        session = Session()
        session.consult_string(
            f"big({10**40}).\n"
            """
            module m.
            export bigger(f).
            bigger(Y) :- big(X), Y = X * X.
            end_module.
            """
        )
        assert [a["Y"] for a in session.query("bigger(Y)")] == [10**80]


class TestStringsInRules:
    def test_string_comparison_in_rule(self):
        session = Session()
        session.consult_string(
            """
            word("apple"). word("banana").

            module m.
            export early(f).
            early(W) :- word(W), W < "b".
            end_module.
            """
        )
        assert [a["W"] for a in session.query("early(W)")] == ["apple"]

    def test_atoms_and_strings_do_not_unify(self):
        session = Session()
        session.consult_string('tag(john). tag("john").')
        assert len(session.query("tag(john)").all()) == 1
        assert len(session.query('tag("john")').all()) == 1
        assert len(session.query("tag(X)").all()) == 2


class TestEmptyAndMissing:
    def test_query_on_empty_base_relation(self):
        session = Session()
        session.insert("present", 1)
        # unknown relation: auto-created empty, zero answers (not an error)
        assert session.query("absent(X)").all() == []

    def test_module_with_unreachable_rules(self):
        """Rules for predicates the query never demands cost nothing."""
        session = Session()
        session.consult_string(
            """
            e(1, 2).

            module m.
            export small(bf).
            small(X, Y) :- e(X, Y).
            huge(X, Y) :- e(X, Z), huge(Z, Y).
            huge(X, Y) :- e(X, Y).
            end_module.
            """
        )
        assert len(session.query("small(1, Y)").all()) == 1
