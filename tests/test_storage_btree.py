"""Unit + property tests for the paged B-tree (paper Section 3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import BTree, MAX_KEYS
from repro.storage.buffer import BufferPool
from repro.storage.file import StorageServer
from repro.terms import Atom, Int, Str


@pytest.fixture
def tree(tmp_path):
    server = StorageServer(str(tmp_path))
    pool = BufferPool(server, capacity=64)
    tree = BTree(pool, "test.idx")
    yield tree
    pool.flush_all()
    server.close()


class TestBTreeBasics:
    def test_insert_and_search(self, tree):
        tree.insert([Int(5)], (1, 0))
        assert tree.search([Int(5)]) == [(1, 0)]
        assert tree.search([Int(6)]) == []

    def test_duplicate_keys_all_found(self, tree):
        for slot in range(5):
            tree.insert([Int(7)], (1, slot))
        assert sorted(tree.search([Int(7)])) == [(1, s) for s in range(5)]

    def test_mixed_type_keys(self, tree):
        tree.insert([Atom("a"), Int(1)], (0, 0))
        tree.insert([Atom("a"), Int(2)], (0, 1))
        tree.insert([Str("a"), Int(1)], (0, 2))
        assert tree.search([Atom("a"), Int(1)]) == [(0, 0)]
        assert tree.search([Str("a"), Int(1)]) == [(0, 2)]

    def test_split_grows_height(self, tree):
        for i in range(MAX_KEYS * 4):
            tree.insert([Int(i)], (0, i))
        assert tree.height() >= 2
        for i in range(MAX_KEYS * 4):
            assert tree.search([Int(i)]) == [(0, i)]
        tree.check_invariants()

    def test_range_scan_ordered(self, tree):
        import random

        values = list(range(100))
        random.Random(7).shuffle(values)
        for v in values:
            tree.insert([Int(v)], (0, v))
        scanned = [key[0][1] for key, _rid in tree.range_scan()]
        assert scanned == sorted(range(100))

    def test_range_scan_bounds_inclusive(self, tree):
        for v in range(20):
            tree.insert([Int(v)], (0, v))
        hits = [key[0][1] for key, _ in tree.range_scan([Int(5)], [Int(10)])]
        assert hits == [5, 6, 7, 8, 9, 10]

    def test_delete_specific_rid(self, tree):
        tree.insert([Int(1)], (0, 0))
        tree.insert([Int(1)], (0, 1))
        assert tree.delete([Int(1)], (0, 0))
        assert tree.search([Int(1)]) == [(0, 1)]
        assert not tree.delete([Int(1)], (0, 0))

    def test_duplicates_across_split_boundary(self, tree):
        """Equal keys spanning a leaf split must all be found."""
        for i in range(MAX_KEYS):
            tree.insert([Int(i)], (0, i))
        for slot in range(MAX_KEYS):
            tree.insert([Int(10)], (9, slot))
        assert len(tree.search([Int(10)])) == MAX_KEYS + 1
        tree.check_invariants()

    def test_persists_across_reopen(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=16)
        tree = BTree(pool, "persist.idx")
        for i in range(50):
            tree.insert([Int(i)], (0, i))
        pool.flush_all()
        server.close()

        server2 = StorageServer(str(tmp_path))
        pool2 = BufferPool(server2, capacity=16)
        tree2 = BTree(pool2, "persist.idx")
        assert tree2.search([Int(33)]) == [(0, 33)]
        assert len(list(tree2.range_scan())) == 50
        server2.close()


class TestBTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["insert", "delete"]), st.integers(0, 40)),
            min_size=1,
            max_size=300,
        )
    )
    def test_matches_reference_multimap(self, tmp_path_factory, operations):
        """After any operation sequence, search results and range scans match
        a reference dict-of-lists, and structural invariants hold."""
        directory = tmp_path_factory.mktemp("btree")
        server = StorageServer(str(directory))
        try:
            pool = BufferPool(server, capacity=64)
            tree = BTree(pool, "prop.idx")
            reference: dict[int, list] = {}
            counter = 0
            for op, value in operations:
                if op == "insert":
                    rid = (0, counter)
                    counter += 1
                    tree.insert([Int(value)], rid)
                    reference.setdefault(value, []).append(rid)
                else:
                    rids = reference.get(value) or []
                    if rids:
                        rid = rids.pop(0)
                        assert tree.delete([Int(value)], rid)
                    else:
                        assert not tree.delete([Int(value)], (0, 999999))
            for value, rids in reference.items():
                assert sorted(tree.search([Int(value)])) == sorted(rids)
            expected_total = sum(len(r) for r in reference.values())
            assert len(list(tree.range_scan())) == expected_total
            tree.check_invariants()
        finally:
            server.close()
