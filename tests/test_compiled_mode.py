"""Tests for the compiled evaluation mode (paper Section 2 / benchmark E12)."""

import pytest

from repro import Session
from repro.builtins import default_registry
from repro.compilemod import RuleCompiler
from repro.errors import EvaluationError
from repro.language import parse_module
from repro.rewriting.seminaive import seminaive_rewrite

REGISTRY = default_registry()


def is_builtin(name, arity):
    return REGISTRY.is_builtin(name, arity)


def _sn_rules(source, recursive):
    module = parse_module(source)
    once, delta = seminaive_rewrite(module.rules, recursive, is_builtin)
    return once + delta


class TestRuleCompiler:
    def test_flat_rule_compiles(self):
        rules = _sn_rules(
            "module m. p(X, Y) :- e(X, Z), f(Z, Y). end_module.", set()
        )
        compiler = RuleCompiler()
        compiled = compiler.try_compile(rules[0])
        assert compiled is not None
        assert "for _t0 in" in compiled.source
        assert compiler.stats.rules_compiled == 1

    def test_arithmetic_and_comparison_compile(self):
        rules = _sn_rules(
            "module m. p(X, Y) :- e(X, C), C > 2, Y = C * 10. end_module.",
            set(),
        )
        compiled = RuleCompiler().try_compile(rules[0])
        assert compiled is not None
        assert "> (2)" in compiled.source.replace("((", "(").replace("))", ")")

    def test_functor_argument_falls_back(self):
        rules = _sn_rules(
            "module m. p(X) :- e(f(X)). end_module.", set()
        )
        compiler = RuleCompiler()
        assert compiler.try_compile(rules[0]) is None
        assert compiler.stats.rules_interpreted == 1

    def test_negation_falls_back(self):
        rules = _sn_rules(
            "module m. p(X) :- e(X), not q(X). end_module.", set()
        )
        assert RuleCompiler().try_compile(rules[0]) is None

    def test_aggregation_falls_back(self):
        rules = _sn_rules(
            "module m. p(X, min(<C>)) :- e(X, C). end_module.", set()
        )
        assert RuleCompiler().try_compile(rules[0]) is None


class TestCompiledEvaluation:
    TC = """
    module tc.
    export path(bf).
    @compiled.
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
    """

    def test_compiled_tc_matches_interpreted(self):
        edges = "".join(f"edge({i}, {i+1}). " for i in range(20))
        compiled_session = Session()
        compiled_session.consult_string(edges + self.TC)
        interpreted_session = Session()
        interpreted_session.consult_string(
            edges + self.TC.replace("@compiled.", "")
        )
        compiled_answers = sorted(
            a["Y"] for a in compiled_session.query("path(3, Y)")
        )
        interpreted_answers = sorted(
            a["Y"] for a in interpreted_session.query("path(3, Y)")
        )
        assert compiled_answers == interpreted_answers
        assert len(compiled_answers) == 17

    def test_compiled_with_arithmetic(self):
        session = Session()
        session.consult_string(
            """
            cost(a, b, 3). cost(b, c, 4).

            module m.
            export total(bbf).
            @compiled.
            total(X, Y, C) :- cost(X, Y, C).
            total(X, Y, C) :- cost(X, Z, C1), total(Z, Y, C2), C = C1 + C2.
            end_module.
            """
        )
        answers = session.query("total(a, c, C)").all()
        assert [a["C"] for a in answers] == [7]

    def test_nonground_fact_raises_in_compiled_mode(self):
        session = Session()
        session.consult_string("edge(1, X)." + self.TC)
        with pytest.raises(EvaluationError):
            session.query("path(1, Y)").all()

    def test_interpreted_mode_handles_the_same_nonground_fact(self):
        session = Session()
        session.consult_string(
            "edge(1, X)." + self.TC.replace("@compiled.", "")
        )
        assert len(session.query("path(1, Y)").all()) >= 1

    def test_compiled_cycle_terminates(self):
        session = Session()
        session.consult_string(
            "edge(1, 2). edge(2, 1)." + self.TC
        )
        assert sorted(a["Y"] for a in session.query("path(1, Y)")) == [1, 2]


class TestGeneratedSource:
    """White-box checks on the generated Python (the codegen contract)."""

    def _compile_one(self, source, recursive=frozenset()):
        rules = _sn_rules(source, set(recursive))
        compiled = RuleCompiler().try_compile(rules[0])
        assert compiled is not None
        return compiled

    def test_constants_become_guards(self):
        compiled = self._compile_one(
            "module m. p(X) :- e(7, X). end_module."
        )
        assert "consts[" in compiled.source
        assert "!= _t0.args[0]: continue" in compiled.source

    def test_repeated_variable_becomes_equality_guard(self):
        compiled = self._compile_one(
            "module m. p(X) :- e(X, X). end_module."
        )
        assert "!= _t0.args[1]: continue" in compiled.source

    def test_bound_probe_passed_to_scan(self):
        compiled = self._compile_one(
            "module m. p(X, Y) :- e(X), f(X, Y). end_module."
        )
        # the second scan's probe carries the bound variable, not _free
        probe_line = [
            line for line in compiled.source.splitlines() if "_probe1" in line
        ][0]
        assert "_free" in probe_line  # Y is free
        assert "v" in probe_line  # X is bound

    def test_nonground_guard_emitted(self):
        compiled = self._compile_one("module m. p(X) :- e(X). end_module.")
        assert "_nonground_error" in compiled.source

    def test_delta_ranges_referenced_for_recursive_literals(self):
        rules = _sn_rules(
            "module m. p(X, Y) :- e(X, Z), p(Z, Y). end_module.",
            {("p", 2)},
        )
        delta_rule = [r for r in rules if not r.once][0]
        compiled = RuleCompiler().try_compile(delta_rule)
        assert compiled is not None
        assert "_KINDS['delta']" in compiled.source

    def test_stats_track_codegen(self):
        compiler = RuleCompiler()
        rules = _sn_rules("module m. p(X) :- e(X). end_module.", set())
        compiler.try_compile(rules[0])
        assert compiler.stats.rules_compiled == 1
        assert compiler.stats.generated_lines > 0
        assert compiler.stats.codegen_seconds > 0
