"""Unit tests for in-memory relations: duplicates, subsumption, marks,
indexes, deletion (paper Sections 3.2, 3.3)."""

import pytest

from repro.errors import CoralError
from repro.relations import (
    ArgumentIndexSpec,
    DuplicatePolicy,
    HashRelation,
    ListRelation,
    PatternIndexSpec,
    Tuple,
)
from repro.terms import Atom, Functor, Int, Var


def t(*values):
    return Tuple(tuple(Int(v) if isinstance(v, int) else Atom(v) for v in values))


class TestHashRelationBasics:
    def test_insert_and_len(self):
        rel = HashRelation("p", 2)
        assert rel.insert(t(1, 2))
        assert len(rel) == 1

    def test_duplicate_rejected(self):
        rel = HashRelation("p", 2)
        rel.insert(t(1, 2))
        assert not rel.insert(t(1, 2))
        assert len(rel) == 1
        assert rel.duplicates_rejected == 1

    def test_multiset_keeps_duplicates(self):
        rel = HashRelation("p", 2, policy=DuplicatePolicy.MULTISET)
        rel.insert(t(1, 2))
        assert rel.insert(t(1, 2))
        assert len(rel) == 2

    def test_arity_mismatch_raises(self):
        rel = HashRelation("p", 2)
        with pytest.raises(CoralError):
            rel.insert(t(1))

    def test_scan_all(self):
        rel = HashRelation("p", 1)
        for i in range(5):
            rel.insert(t(i))
        assert sorted(tup[0].value for tup in rel.scan()) == [0, 1, 2, 3, 4]

    def test_contains(self):
        rel = HashRelation("p", 2)
        rel.insert(t(1, 2))
        assert rel.contains(t(1, 2))
        assert not rel.contains(t(2, 1))

    def test_delete(self):
        rel = HashRelation("p", 2)
        rel.insert(t(1, 2))
        rel.insert(t(3, 4))
        assert rel.delete(t(1, 2))
        assert len(rel) == 1
        assert not rel.contains(t(1, 2))
        assert not rel.delete(t(1, 2))

    def test_reinsert_after_delete(self):
        rel = HashRelation("p", 1)
        rel.insert(t(1))
        rel.delete(t(1))
        assert rel.insert(t(1))
        assert len(rel) == 1

    def test_insert_values_convenience(self):
        rel = HashRelation("emp", 2)
        assert rel.insert_values("john", 30)
        assert rel.contains(Tuple((Atom("john"), Int(30))))


class TestNonGroundFacts:
    def test_variant_is_duplicate(self):
        rel = HashRelation("p", 2)
        rel.insert(Tuple((Var("X"), Int(1))))
        assert not rel.insert(Tuple((Var("Y"), Int(1))))

    def test_subsumed_fact_rejected(self):
        rel = HashRelation("p", 2)
        rel.insert(Tuple((Var("X"), Int(1))))  # p(X, 1) — universal in X
        assert not rel.insert(Tuple((Atom("a"), Int(1))))
        assert rel.insert(Tuple((Atom("a"), Int(2))))

    def test_repeated_var_subsumption_is_consistent(self):
        rel = HashRelation("p", 2)
        x = Var("X")
        rel.insert(Tuple((x, x)))  # p(X, X)
        assert not rel.insert(Tuple((Int(3), Int(3))))
        assert rel.insert(Tuple((Int(3), Int(4))))

    def test_more_general_fact_is_stored_alongside(self):
        rel = HashRelation("p", 1)
        rel.insert(Tuple((Int(1),)))
        assert rel.insert(Tuple((Var("X"),)))  # more general: still inserted
        assert len(rel) == 2


class TestMarks:
    def test_marks_partition_insertions(self):
        rel = HashRelation("p", 1)
        rel.insert(t(1))
        first = rel.mark()
        rel.insert(t(2))
        rel.insert(t(3))
        second = rel.mark()
        rel.insert(t(4))

        full = {tup[0].value for tup in rel.scan()}
        before_first = {tup[0].value for tup in rel.scan(until=first)}
        between = {tup[0].value for tup in rel.scan(since=first, until=second)}
        after_second = {tup[0].value for tup in rel.scan(since=second)}

        assert full == {1, 2, 3, 4}
        assert before_first == {1}
        assert between == {2, 3}
        assert after_second == {4}

    def test_count_since(self):
        rel = HashRelation("p", 1)
        rel.insert(t(1))
        mark = rel.mark()
        assert rel.count_since(mark) == 0
        rel.insert(t(2))
        assert rel.count_since(mark) == 1

    def test_mark_on_empty_segment_is_stable(self):
        rel = HashRelation("p", 1)
        rel.insert(t(1))
        first = rel.mark()
        second = rel.mark()
        assert first == second

    def test_duplicates_checked_across_segments(self):
        rel = HashRelation("p", 1)
        rel.insert(t(1))
        rel.mark()
        assert not rel.insert(t(1))

    def test_list_relation_marks(self):
        rel = ListRelation("p", 1)
        rel.insert(t(1))
        mark = rel.mark()
        rel.insert(t(2))
        assert {tup[0].value for tup in rel.scan(since=mark)} == {2}
        assert rel.count_since(mark) == 1


class TestArgumentIndex:
    def test_indexed_lookup_finds_matches(self):
        rel = HashRelation("edge", 2)
        rel.add_index(ArgumentIndexSpec(2, [0]))
        for a, b in [(1, 2), (1, 3), (2, 3)]:
            rel.insert(t(a, b))
        hits = list(rel.scan([Int(1), Var("Y")], None))
        assert {tup[1].value for tup in hits} == {2, 3}

    def test_unusable_probe_falls_back_to_scan(self):
        rel = HashRelation("edge", 2)
        rel.add_index(ArgumentIndexSpec(2, [0]))
        rel.insert(t(1, 2))
        hits = list(rel.scan([Var("X"), Int(2)], None))
        assert len(hits) == 1

    def test_index_added_after_inserts_covers_existing(self):
        rel = HashRelation("edge", 2)
        rel.insert(t(1, 2))
        rel.add_index(ArgumentIndexSpec(2, [1]))
        hits = list(rel.scan([Var("X"), Int(2)], None))
        assert len(hits) == 1

    def test_nonground_tuple_in_var_bucket_always_found(self):
        rel = HashRelation("p", 2)
        rel.add_index(ArgumentIndexSpec(2, [0]))
        rel.insert(Tuple((Var("X"), Int(9))))  # var at indexed position
        hits = list(rel.scan([Int(5), Var("Y")], None))
        assert len(hits) == 1  # candidate; caller re-unifies

    def test_index_maintained_under_delete(self):
        rel = HashRelation("p", 2)
        rel.add_index(ArgumentIndexSpec(2, [0]))
        rel.insert(t(1, 2))
        rel.delete(t(1, 2))
        assert list(rel.scan([Int(1), Var("Y")], None)) == []

    def test_index_spans_segments(self):
        rel = HashRelation("p", 2)
        rel.add_index(ArgumentIndexSpec(2, [0]))
        rel.insert(t(1, 2))
        mark = rel.mark()
        rel.insert(t(1, 3))
        all_hits = list(rel.scan([Int(1), Var("Y")], None))
        delta_hits = list(rel.scan([Int(1), Var("Y")], None, since=mark))
        assert len(all_hits) == 2
        assert len(delta_hits) == 1


class TestPatternIndex:
    def _emp(self):
        """The paper's example: @make_index emp(Name, addr(Street, City))(Name, City)."""
        name, street, city = Var("Name"), Var("Street"), Var("City")
        rel = HashRelation("emp", 2)
        rel.add_index(
            PatternIndexSpec(
                [name, Functor("addr", (street, city))], [name, city]
            )
        )
        return rel

    @staticmethod
    def _emp_tuple(name, street, city):
        return Tuple((Atom(name), Functor("addr", (Atom(street), Atom(city)))))

    def test_lookup_by_nested_subterm(self):
        rel = self._emp()
        rel.insert(self._emp_tuple("john", "main_st", "madison"))
        rel.insert(self._emp_tuple("john", "oak_st", "chicago"))
        rel.insert(self._emp_tuple("mary", "elm_st", "madison"))
        probe = [Atom("john"), Functor("addr", (Var("S"), Atom("madison")))]
        hits = list(rel.scan(probe, None))
        assert len(hits) == 1
        assert hits[0][1].args[0] == Atom("main_st")

    def test_probe_without_structure_falls_back(self):
        rel = self._emp()
        rel.insert(self._emp_tuple("john", "main_st", "madison"))
        hits = list(rel.scan([Atom("john"), Var("A")], None))
        assert len(hits) == 1

    def test_tuple_not_matching_pattern_still_retrievable(self):
        rel = self._emp()
        rel.insert(Tuple((Atom("ghost"), Var("Anywhere"))))
        probe = [Atom("ghost"), Functor("addr", (Var("S"), Atom("madison")))]
        assert len(list(rel.scan(probe, None))) == 1

    def test_key_var_must_occur_in_pattern(self):
        with pytest.raises(CoralError):
            PatternIndexSpec([Var("A")], [Var("B")])


class TestListPatternIndex:
    def test_paper_append_example(self):
        """Section 3.3: retrieve tuples of `append` whose first argument
        matches [X|[1,2,3]] — a pattern index over list structure."""
        from repro.terms import cons, make_list

        x = Var("X")
        pattern_list = cons(x, make_list([Int(1), Int(2), Int(3)]))
        rel = HashRelation("append", 3)
        rel.add_index(PatternIndexSpec([pattern_list, Var("B"), Var("W")], [x]))

        matching = Tuple(
            (
                make_list([Int(5), Int(1), Int(2), Int(3)]),
                make_list([Int(4)]),
                make_list([Int(5), Int(1), Int(2), Int(3), Int(4)]),
            )
        )
        other = Tuple(
            (
                make_list([Int(9), Int(9)]),
                make_list([]),
                make_list([Int(9), Int(9)]),
            )
        )
        rel.insert(matching)
        rel.insert(other)

        probe = [
            cons(Int(5), make_list([Int(1), Int(2), Int(3)])),
            Var("B"),
            Var("W"),
        ]
        hits = list(rel.scan(probe, None))
        assert matching in hits
        # the paper's example tuple ([5|[1,2,3]], [4], [5,1,2,3,4]) is found
        assert all(h != other for h in hits)

    def test_list_pattern_annotation_through_session(self):
        from repro import Session

        session = Session()
        session.consult_string(
            """
            @make_index stock([H | T], Q) (H).
            stock([widget, small], 4).
            stock([widget, large], 9).
            stock([gadget, small], 2).
            """
        )
        answers = session.query("stock([widget, S], Q)").all()
        assert len(answers) == 2
