"""Live queries (ISSUE 8): incremental subscriptions, locally and over the
wire.

Covers the maintenance semantics (snapshot + exactly-once ordered deltas,
eager repair via the shared maintenance engine), the refusal matrix for
unmaintainable programs, the memo/live shared-predicate regression, and the
server plumbing: SUBSCRIBE/DELTA/UNSUBSCRIBE, bounded queues with
drop-to-resnapshot, reclamation on client death, and the guarantee that a
stalled subscriber never blocks a concurrent writer's commit.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.errors import SubscriptionError
from repro.server import CoralServer

TC = """
edge(1, 2). edge(2, 3). edge(3, 4).

module tc.
export path(ff, bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


def _collect(session, query):
    """Subscribe and return (view, log) where log records every delta."""
    log = []
    view = session.subscribe(query, log.extend)
    return view, log


def _values(tup):
    from repro.terms import from_arg

    return tuple(from_arg(a) for a in tup.args)


def _fold(snapshot, log):
    state = {t.key(): _values(t) for t in snapshot}
    for sign, tup in log:
        if sign > 0:
            state[tup.key()] = _values(tup)
        else:
            state.pop(tup.key(), None)
    return sorted(state.values())


class TestLiveViewLocal:
    def test_snapshot_then_insert_and_delete_deltas(self):
        session = Session()
        session.consult_string(TC)
        view, log = _collect(session, "?- path(X, Y).")
        snapshot = view.snapshot()
        assert len(snapshot) == 6
        session.insert("edge", 4, 5)
        inserts = [(s, _values(t)) for s, t in log]
        assert all(s == 1 for s, _ in inserts)
        assert sorted(v for _, v in inserts) == [
            (1, 5), (2, 5), (3, 5), (4, 5),
        ]
        log.clear()
        session.delete("edge", 1, 2)
        deletes = [(s, _values(t)) for s, t in log]
        assert all(s == -1 for s, _ in deletes)
        assert sorted(v for _, v in deletes) == [
            (1, 2), (1, 3), (1, 4), (1, 5),
        ]

    def test_folded_stream_equals_live_query(self):
        session = Session()
        session.consult_string(TC)
        view, log = _collect(session, "?- path(X, Y).")
        snapshot = view.snapshot()
        session.insert("edge", 4, 5)
        session.delete("edge", 2, 3)
        session.insert("edge", 2, 4)
        session.delete("edge", 4, 5)
        expected = sorted(set(session.query("path(X, Y)").tuples()))
        assert _fold(snapshot, log) == expected

    def test_bound_goal_filters_deltas(self):
        session = Session()
        session.consult_string(TC)
        view, log = _collect(session, "?- path(1, Y).")
        assert sorted(_values(t) for t in view.snapshot()) == [
            (1, 2), (1, 3), (1, 4),
        ]
        session.insert("edge", 4, 5)
        assert sorted(_values(t) for _, t in log) == [(1, 5)]

    def test_base_relation_view(self):
        session = Session()
        session.consult_string("edge(1, 2). edge(2, 3).")
        view, log = _collect(session, "?- edge(X, Y).")
        assert len(view.snapshot()) == 2
        session.insert("edge", 7, 8)
        session.delete("edge", 1, 2)
        assert [(s, _values(t)) for s, t in log] == [
            (1, (7, 8)), (-1, (1, 2)),
        ]

    def test_exactly_once_per_commit_in_order(self):
        """One delta event per committed mutation, never a duplicate key
        within an event, and folding never resurrects a dead tuple."""
        session = Session()
        session.consult_string(TC)
        events = []
        view = session.subscribe(
            "?- path(X, Y).", lambda deltas: events.append(list(deltas))
        )
        session.insert("edge", 4, 5)
        session.insert("edge", 4, 5)  # no-op: already present
        session.delete("edge", 4, 5)
        assert len(events) == 2  # the duplicate insert emitted nothing
        for event in events:
            keys = [t.key() for _, t in event]
            assert len(keys) == len(set(keys))
        # the insert event precedes (and mirrors) the delete event
        assert {t.key() for _, t in events[0]} == {
            t.key() for _, t in events[1]
        }
        assert all(s == 1 for s, _ in events[0])
        assert all(s == -1 for s, _ in events[1])

    def test_unsubscribe_stops_deltas(self):
        session = Session()
        session.consult_string(TC)
        view, log = _collect(session, "?- path(X, Y).")
        assert session.unsubscribe(view.view_id)
        session.insert("edge", 4, 5)
        assert log == []
        assert not session.unsubscribe(view.view_id)

    def test_module_unload_closes_view(self):
        session = Session()
        session.consult_string(TC)
        closed = []
        view = session.subscribe(
            "?- path(X, Y).", lambda deltas: None, closed.append
        )
        session.modules.unload("tc")
        assert view.closed
        assert closed and "tc" in closed[0]
        assert session.live.snapshot()["subscriptions"] == 0

    def test_unrelated_module_load_keeps_view_correct(self):
        session = Session()
        session.consult_string(TC)
        view, log = _collect(session, "?- path(X, Y).")
        session.consult_string(
            "module other.\nexport q(f).\nq(1).\nend_module.\n"
        )
        assert not view.closed
        session.insert("edge", 4, 5)
        expected = sorted(set(session.query("path(X, Y)").tuples()))
        assert sorted(_values(t) for t in view.snapshot()) == expected

    def test_stats_snapshot_counts(self):
        session = Session()
        session.consult_string(TC)
        _view, _log = _collect(session, "?- path(X, Y).")
        session.insert("edge", 4, 5)
        stats = session.live.snapshot()
        assert stats["subscriptions"] == 1
        assert stats["deltas_emitted"] >= 4
        assert stats["refreshes"] >= 1


class TestRefusalMatrix:
    """Unmaintainable programs are refused at subscribe time with a typed
    error naming the obstruction (docs/LIVE.md's matrix)."""

    CASES = {
        "negation": (
            "e(1, 2). blocked(2).\nmodule m.\nexport ok(ff).\n"
            "ok(X, Y) :- e(X, Y), not blocked(X).\nend_module.",
            "?- ok(X, Y).",
            "negation",
        ),
        "aggregation": (
            "item(a, 3).\nmodule m.\nexport best(ff).\n"
            "best(G, max(<V>)) :- item(G, V).\nend_module.",
            "?- best(G, V).",
            "aggregation",
        ),
        "compiled": (
            "e(1, 2).\nmodule m.\n@compiled.\nexport ok(ff).\n"
            "ok(X, Y) :- e(X, Y).\nend_module.",
            "?- ok(X, Y).",
            "compiled",
        ),
        "save_module": (
            "e(1, 2).\nmodule m.\n@save_module.\nexport ok(ff).\n"
            "ok(X, Y) :- e(X, Y).\nend_module.",
            "?- ok(X, Y).",
            "save_module",
        ),
        "pipelining": (
            "e(1, 2).\nmodule m.\n@pipelining.\nexport ok(ff).\n"
            "ok(X, Y) :- e(X, Y).\nend_module.",
            "?- ok(X, Y).",
            "pipelin",
        ),
        "cross_module": (
            "e(1, 2).\nmodule low.\nexport lo(ff).\n"
            "lo(X, Y) :- e(X, Y).\nend_module.\n"
            "module high.\nexport hi(ff).\n"
            "hi(X, Y) :- lo(X, Y).\nend_module.",
            "?- hi(X, Y).",
            "module",
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_refused_with_reason(self, name):
        program, query, fragment = self.CASES[name]
        session = Session()
        session.consult_string(program)
        with pytest.raises(SubscriptionError) as err:
            session.subscribe(query, lambda deltas: None)
        assert fragment in str(err.value)

    def test_builtin_goal_is_refused(self):
        session = Session()
        with pytest.raises(SubscriptionError, match="builtin"):
            session.subscribe("?- X = 1.", lambda deltas: None)

    def test_refusals_are_counted(self):
        session = Session()
        session.consult_string(self.CASES["negation"][0])
        with pytest.raises(SubscriptionError):
            session.subscribe("?- ok(X, Y).", lambda deltas: None)
        assert session.live.snapshot()["refusals"] == 1


class TestMemoAndLiveShareAPredicate:
    """Regression (ISSUE 8, satellite 4): a memo entry and a live view over
    the same predicate each own their repair state — pending deletes must
    not be double-applied against the pre-state union."""

    def test_interleaved_memoized_queries_and_subscription_updates(self):
        session = Session(memo=True)
        session.consult_string(TC)
        # populate the memo entry, then register the live view
        assert len(session.query("path(X, Y)").all()) == 6
        view, log = _collect(session, "?- path(X, Y).")
        snapshot = view.snapshot()

        # interleave: each mutation repairs the live view eagerly (at the
        # hook) and the memo entry lazily (at the next lookup)
        session.delete("edge", 2, 3)
        memo_now = sorted(set(session.query("path(X, Y)").tuples()))
        fresh = Session()
        fresh.consult_string(TC.replace("edge(2, 3). ", ""))
        cold = sorted(set(fresh.query("path(X, Y)").tuples()))
        assert memo_now == cold
        assert _fold(snapshot, log) == cold

        session.insert("edge", 2, 7)
        session.insert("edge", 7, 3)
        session.delete("edge", 3, 4)
        memo_now = sorted(set(session.query("path(X, Y)").tuples()))
        fresh = Session()
        fresh.consult_string(
            TC.replace("edge(2, 3). ", "").replace("edge(3, 4).", "")
            + "edge(2, 7). edge(7, 3)."
        )
        cold = sorted(set(fresh.query("path(X, Y)").tuples()))
        assert memo_now == cold
        assert _fold(snapshot, log) == cold
        # the memo entry was repaired (not evicted) and the live view
        # repaired eagerly: both paths ran DRed against their own state
        assert session.memo.snapshot()["dred_overdeleted"] > 0
        assert session.live.snapshot()["refreshes"] > 0

    def test_delete_applied_once_when_memo_freshens_after_live(self):
        """The live view's eager DRed must leave the memo entry's pending
        delete queue intact (and vice versa)."""
        session = Session(memo=True)
        session.consult_string(TC)
        session.query("path(X, Y)").all()
        view, log = _collect(session, "?- path(X, Y).")
        session.delete("edge", 1, 2)
        # live repaired at the hook; memo still has the delete pending.
        # Its lazy freshen must now remove exactly the same answers.
        got = sorted(set(session.query("path(X, Y)").tuples()))
        assert got == [(2, 3), (2, 4), (3, 4)]
        assert sorted(_values(t) for t in view.snapshot()) == got


def _boot_server(**kwargs):
    return CoralServer(host="127.0.0.1", port=0, **kwargs)


class TestServerSubscriptions:
    def test_subscribe_poll_unsubscribe_roundtrip(self):
        with _boot_server() as server:
            host, port = server.address
            with RemoteSession(host, port) as db:
                db.consult_string(TC)
                sub = db.subscribe("?- path(X, Y).")
                assert len(sub.view()) == 6
                db.insert("edge", 4, 5)
                kind, deltas = sub.poll(timeout=5.0)
                assert kind == "deltas"
                assert sorted(v for s, v in deltas) == [
                    (1, 5), (2, 5), (3, 5), (4, 5),
                ]
                assert all(s == 1 for s, _ in deltas)
                assert len(sub.view()) == 10
                sub.close()
                assert sub.poll()[0] == "closed"

    def test_wire_refusal_raises_subscription_error(self):
        with _boot_server() as server:
            host, port = server.address
            with RemoteSession(host, port) as db:
                db.consult_string(
                    "e(1, 2).\nmodule m.\nexport ok(ff).\n"
                    "ok(X, Y) :- e(X, Y), not e(Y, X).\nend_module."
                )
                with pytest.raises(SubscriptionError, match="negation"):
                    db.subscribe("?- ok(X, Y).")

    def test_stalled_subscriber_does_not_block_writers(self):
        """A subscriber that never polls fills its bounded queue; writers
        keep committing at full speed and the subscriber resnapshots."""
        with _boot_server(live_queue=8) as server:
            host, port = server.address
            with RemoteSession(host, port) as db:
                db.consult_string("edge(0, 0).")
                sub = db.subscribe("?- edge(X, Y).")
                start = time.monotonic()
                for i in range(1, 41):
                    assert db.insert("edge", i, i)
                elapsed = time.monotonic() - start
                # 40 committed writes against a stalled subscriber must not
                # take anywhere near a blocking path's worth of time
                assert elapsed < 5.0
                kind, payload = sub.poll(timeout=5.0)
                assert kind == "resnapshot"
                assert len(payload) == 41
                assert sub.view() == payload
                # the stream continues cleanly after the resnapshot
                db.insert("edge", 99, 99)
                kind, deltas = sub.poll(timeout=5.0)
                assert kind == "deltas" and deltas == [(1, (99, 99))]
                stats = db.stats()["live"]
                assert stats["resnapshots"] == 1
                assert stats["drops"] > 0

    def test_client_death_reclaims_subscription(self):
        with _boot_server() as server:
            host, port = server.address
            with RemoteSession(host, port) as db:
                db.consult_string(TC)
                other = RemoteSession(host, port)
                sub = other.subscribe("?- path(X, Y).")
                assert db.stats()["live"]["subscriptions"] == 1
                # sever the subscription's dedicated socket without
                # UNSUBSCRIBE/BYE — an abrupt client death
                sub._link.sock.close()
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if db.stats()["live"]["subscriptions"] == 0:
                        break
                    time.sleep(0.05)
                assert db.stats()["live"]["subscriptions"] == 0
                # the database is still healthy for everyone else
                assert db.insert("edge", 4, 5)

    def test_replica_streams_replicated_deltas(self):
        """A subscription on a read replica sees deltas for writes applied
        through the replication stream."""
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            primary = _boot_server(
                changelog=os.path.join(tmp, "primary.log")
            ).start()
            try:
                phost, pport = primary.address
                replica = CoralServer(
                    host="127.0.0.1",
                    port=0,
                    changelog=os.path.join(tmp, "replica.log"),
                    replicate_from=(phost, pport),
                ).start()
                try:
                    with RemoteSession(phost, pport) as writer:
                        writer.consult_string(TC)
                        rhost, rport = replica.address
                        deadline = time.monotonic() + 10.0
                        sub = None
                        with RemoteSession(rhost, rport) as reader:
                            while time.monotonic() < deadline:
                                try:
                                    sub = reader.subscribe("?- path(X, Y).")
                                    if len(sub.view()) == 6:
                                        break
                                    sub.close()
                                    sub = None
                                except Exception:
                                    pass
                                time.sleep(0.1)
                            assert sub is not None and len(sub.view()) == 6
                            writer.insert("edge", 4, 5)
                            got = []
                            deadline = time.monotonic() + 10.0
                            while (
                                len(got) < 4 and time.monotonic() < deadline
                            ):
                                kind, payload = sub.poll(timeout=1.0)
                                if kind == "deltas":
                                    got.extend(payload)
                            assert sorted(v for _, v in got) == [
                                (1, 5), (2, 5), (3, 5), (4, 5),
                            ]
                finally:
                    replica.shutdown()
            finally:
                primary.shutdown()


_KILLED_SUBSCRIBER = textwrap.dedent(
    """
    import sys, time
    sys.path.insert(0, {src!r})
    from repro.client import RemoteSession
    db = RemoteSession({host!r}, {port})
    sub = db.subscribe("?- path(X, Y).")
    print("SUBSCRIBED", len(sub.view()), flush=True)
    while True:
        sub.poll(timeout=1.0)
    """
)


class TestSubscriberChaos:
    def test_sigkill_mid_stream_leaves_server_healthy(self):
        """SIGKILL a subscriber process mid-stream: the server reclaims its
        subscription and keeps serving writers and other subscribers."""
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        with _boot_server(idle_timeout=2.0) as server:
            host, port = server.address
            with RemoteSession(host, port) as db:
                db.consult_string(TC)
                survivor = db.subscribe("?- path(X, Y).")
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        _KILLED_SUBSCRIBER.format(
                            src=os.path.abspath(src), host=host, port=port
                        ),
                    ],
                    stdout=subprocess.PIPE,
                )
                try:
                    line = proc.stdout.readline().decode()
                    assert line.startswith("SUBSCRIBED"), line
                    assert db.stats()["live"]["subscriptions"] == 2
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.wait(timeout=10)
                finally:
                    if proc.poll() is None:
                        proc.kill()
                # writers keep committing and the survivor keeps streaming
                assert db.insert("edge", 4, 5)
                kind, deltas = survivor.poll(timeout=5.0)
                assert kind == "deltas" and len(deltas) == 4
                # the dead client's subscription is reclaimed (its socket
                # dies at the next DELTA wait or the idle reaper)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if db.stats()["live"]["subscriptions"] == 1:
                        break
                    time.sleep(0.1)
                assert db.stats()["live"]["subscriptions"] == 1
