"""Smoke tests: every example script runs to completion and prints the
expected headline results."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_example_count_meets_deliverable():
    assert len(EXAMPLES) >= 3


def test_shortest_path_example_output():
    script = next(p for p in EXAMPLES if p.stem == "shortest_path")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=120
    )
    assert "to ord:   120 miles" in result.stdout
    # shortest MSN->SFO goes via ORD (1970), not the direct 2050 flight
    assert "to sfo:  1970 miles" in result.stdout


def test_quickstart_output():
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=120
    )
    assert "nrt" in result.stdout
    assert "First answer to path(msn, X): ord" in result.stdout
