"""Focused tests for the save-module facility (paper Section 5.4.2),
including the cross-call delta machinery ("no derivations are repeated
across multiple calls to the module")."""

import pytest

from repro import Session
from repro.errors import ModuleError

ORG = """
reports_to(alice, carol).   reports_to(bob, carol).
reports_to(carol, eve).     reports_to(dan, erin).
reports_to(erin, eve).      reports_to(frank, dan).
reports_to(grace, dan).     reports_to(heidi, alice).
reports_to(ivan, alice).    reports_to(judy, bob).
employee(alice). employee(bob). employee(carol). employee(dan).
employee(erin). employee(eve). employee(frank). employee(grace).
employee(heidi). employee(ivan). employee(judy).
"""

PEERS = """
module peers.
export peer(bf).
@save_module.
peer(X, Y) :- employee(X), X = Y.
peer(X, Y) :- reports_to(X, MX), peer(MX, MY), reports_to(Y, MY).
end_module.
"""


class TestSaveModuleCorrectness:
    def test_second_call_combines_new_subgoals_with_old_answers(self):
        """The regression the cross-call delta versions exist for: frank's
        peer computation needs NEW supplementary facts joined with peer
        answers derived during alice's earlier call."""
        session = Session()
        session.consult_string(ORG + PEERS)
        assert sorted(a["Y"] for a in session.query("peer(alice, Y)")) == [
            "alice", "bob", "dan",
        ]
        assert sorted(a["Y"] for a in session.query("peer(frank, Y)")) == [
            "frank", "grace", "heidi", "ivan", "judy",
        ]

    def test_saved_answers_match_fresh_module_on_any_order(self):
        queries = ["frank", "alice", "judy", "eve", "heidi"]
        saved = Session()
        saved.consult_string(ORG + PEERS)
        fresh_program = ORG + PEERS.replace("@save_module.", "")
        for who in queries:
            fresh = Session()
            fresh.consult_string(fresh_program)
            expected = sorted(a["Y"] for a in fresh.query(f"peer({who}, Y)"))
            got = sorted(a["Y"] for a in saved.query(f"peer({who}, Y)"))
            assert got == expected, who

    def test_repeated_identical_call_does_no_new_work(self):
        session = Session()
        session.consult_string(ORG + PEERS)
        session.query("peer(alice, Y)").all()
        inferences = session.stats.inferences
        session.query("peer(alice, Y)").all()
        assert session.stats.inferences == inferences  # fully cached

    def test_aggregation_recomputed_on_resumption(self):
        """A new group member arriving in a later call must refresh the
        aggregate, not leave the old value behind."""
        session = Session()
        session.consult_string(
            """
            edge(a, b, 5). edge(a, c, 2). edge(c, b, 1).

            module m.
            export best(bbf).
            @save_module.
            cost(X, Y, C) :- edge(X, Y, C).
            cost(X, Y, C) :- edge(X, Z, C1), cost(Z, Y, C2), C = C1 + C2.
            best(X, Y, min(<C>)) :- cost(X, Y, C).
            end_module.
            """
        )
        assert [a["C"] for a in session.query("best(a, b, C)")] == [3]
        # second call on another pair still sees correct (re-aggregated) data
        assert [a["C"] for a in session.query("best(a, c, C)")] == [2]
        assert [a["C"] for a in session.query("best(a, b, C)")] == [3]

    def test_recursive_invocation_rejected(self):
        """Section 5.4.2: 'if a module uses the save module feature, it
        should not be invoked recursively.'"""
        session = Session()
        session.consult_string(
            """
            n(1).

            module a.
            export pa(b).
            @save_module.
            pa(X) :- n(X), pb(X).
            end_module.

            module b.
            export pb(b).
            pb(X) :- pa(X).
            end_module.
            """
        )
        with pytest.raises(ModuleError):
            session.query("pa(1)").all()

    def test_unload_drops_saved_state(self):
        session = Session()
        session.consult_string(ORG + PEERS)
        session.query("peer(alice, Y)").all()
        session.modules.unload("peers")
        session.consult_string(PEERS)
        assert sorted(a["Y"] for a in session.query("peer(alice, Y)")) == [
            "alice", "bob", "dan",
        ]
