"""Integration tests: ordered scans, shared-server multi-client access
(Section 2: "Multiple CORAL processes could interact by accessing persistent
data stored using the EXODUS storage manager"), and the between/3 builtin."""

import pytest

from repro import Session
from repro.errors import StorageError
from repro.relations import Tuple
from repro.storage import BufferPool, PersistentRelation, StorageServer
from repro.terms import Int


class TestOrderedScan:
    def _relation(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool = BufferPool(server, capacity=32)
        relation = PersistentRelation("score", 2, pool)
        relation.create_index([1])
        import random

        values = list(range(50))
        random.Random(9).shuffle(values)
        for i, v in enumerate(values):
            relation.insert(Tuple((Int(i), Int(v))))
        return server, relation

    def test_full_ordered_scan(self, tmp_path):
        server, relation = self._relation(tmp_path)
        ordered = [t[1].value for t in relation.scan_ordered([1])]
        assert ordered == sorted(ordered)
        assert len(ordered) == 50
        server.close()

    def test_bounded_range(self, tmp_path):
        server, relation = self._relation(tmp_path)
        hits = [
            t[1].value
            for t in relation.scan_ordered([1], [Int(10)], [Int(20)])
        ]
        assert hits == list(range(10, 21))
        server.close()

    def test_missing_index_rejected(self, tmp_path):
        server, relation = self._relation(tmp_path)
        with pytest.raises(StorageError):
            relation.scan_ordered([0])
        server.close()


class TestSharedServer:
    def test_two_clients_one_server(self, tmp_path):
        """Two buffer pools (two 'CORAL client processes') against one
        storage server: the second sees the first's flushed writes."""
        server = StorageServer(str(tmp_path))
        writer_pool = BufferPool(server, capacity=16)
        writer = PersistentRelation("shared", 2, writer_pool)
        for i in range(100):
            writer.insert(Tuple((Int(i), Int(i * 2))))
        writer_pool.flush_all()

        reader_pool = BufferPool(server, capacity=16)
        reader = PersistentRelation("shared", 2, reader_pool)
        assert len(reader) == 100
        assert sum(1 for _ in reader.scan()) == 100
        # both clients' requests hit the same accounted server
        assert server.stats.page_reads > 0
        server.close()

    def test_client_buffer_pools_independent(self, tmp_path):
        server = StorageServer(str(tmp_path))
        pool_a = BufferPool(server, capacity=4)
        pool_b = BufferPool(server, capacity=4)
        relation = PersistentRelation("r", 1, pool_a)
        for i in range(500):
            relation.insert(Tuple((Int(i),)))
        pool_a.flush_all()
        relation_b = PersistentRelation("r", 1, pool_b)
        sum(1 for _ in relation_b.scan())
        assert pool_b.stats.misses > 0
        assert pool_a.stats.hits + pool_a.stats.misses > 0
        server.close()


class TestBetweenBuiltin:
    def test_generates_range_in_rules(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export squares(ff).
            squares(N, S) :- between(1, 5, N), S = N * N.
            end_module.
            """
        )
        rows = sorted(session.query("squares(N, S)").tuples())
        assert rows == [(1, 1), (2, 4), (3, 9), (4, 16), (5, 25)]

    def test_membership_check(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export inrange(b).
            inrange(X) :- between(10, 20, X).
            end_module.
            """
        )
        assert len(session.query("inrange(15)").all()) == 1
        assert len(session.query("inrange(25)").all()) == 0

    def test_empty_range(self):
        session = Session()
        session.consult_string(
            "module m. export p(f). p(X) :- between(5, 1, X). end_module."
        )
        assert session.query("p(X)").all() == []
