"""Tests for set-grouping (the paper's "set-grouping and aggregation") and
for deep-term robustness (iterative unify/resolve/hash-consing)."""

import pytest

from repro import Session
from repro.eval.aggregates import fold_aggregate
from repro.terms import Int, is_cons, list_elements


class TestSetGrouping:
    def test_set_collects_distinct_sorted(self):
        session = Session()
        session.consult_string(
            """
            works(bob, sales). works(ann, sales). works(cal, eng).

            module m.
            export staff(ff).
            staff(D, set(<E>)) :- works(E, D).
            end_module.
            """
        )
        rows = dict(session.query("staff(D, S)").tuples())
        assert rows == {"sales": ["ann", "bob"], "eng": ["cal"]}

    def test_bag_keeps_derivation_copies(self):
        session = Session()
        session.consult_string(
            """
            buys(ann, milk). buys(ann, bread).

            module m.
            export carts(ff).
            carts(P, bag(<I>)) :- buys(P, I).
            end_module.
            """
        )
        rows = dict(session.query("carts(P, B)").tuples())
        assert sorted(rows["ann"]) == ["bread", "milk"]

    def test_set_of_structured_terms(self):
        session = Session()
        session.consult_string(
            """
            owns(ann, book(dune)). owns(ann, book(lotr)).

            module m.
            export shelf(bf).
            shelf(P, set(<B>)) :- owns(P, B).
            end_module.
            """
        )
        answer = session.query("shelf(ann, S)").all()[0]
        elements = list_elements(answer.term("S"))
        assert len(elements) == 2
        assert all(e.name == "book" for e in elements)

    def test_grouped_set_feeds_list_builtins(self):
        """The collected set term is an ordinary list usable downstream."""
        session = Session()
        session.consult_string(
            """
            works(ann, sales). works(bob, sales).

            module m.
            export headcount2(ff).
            staff(D, set(<E>)) :- works(E, D).
            headcount2(D, N) :- staff(D, L), length(L, N).
            end_module.
            """
        )
        assert dict(session.query("headcount2(D, N)").tuples()) == {"sales": 2}

    def test_fold_set_empty(self):
        assert list_elements(fold_aggregate("set", [])) == []

    def test_fold_bag_preserves_order(self):
        values = [Int(3), Int(1), Int(3)]
        assert list_elements(fold_aggregate("bag", values)) == values
        assert list_elements(fold_aggregate("set", values)) == [Int(1), Int(3)]


class TestDeepTerms:
    def test_deep_trail_through_full_stack(self):
        """A path list thousands of cells deep flows through parsing,
        unification, resolve, storage in relations, and answer extraction —
        the 'large terms' robustness Section 3.1 demands."""
        hops = 1200
        session = Session()
        session.consult_string(
            "".join(f"edge({i}, {i+1}). " for i in range(hops))
            + """
            module m.
            export trail(bbf).
            trail(X, Y, [X, Y]) :- edge(X, Y).
            trail(X, Y, P) :- edge(X, Z), trail(Z, Y, P0), append([X], P0, P).
            end_module.
            """
        )
        answers = session.query(f"trail(0, {hops}, P)").all()
        assert len(answers) == 1
        term = answers[0].term("P")
        count = 0
        while is_cons(term):
            count += 1
            term = term.args[1]
        assert count == hops + 1

    def test_deep_duplicate_detection(self):
        """Re-deriving a deep fact must be caught by the hash-consed key."""
        from repro.relations import HashRelation, Tuple
        from repro.terms import make_list

        relation = HashRelation("deep", 1)
        first = make_list([Int(i) for i in range(3000)])
        second = make_list([Int(i) for i in range(3000)])
        assert relation.insert(Tuple((first,)))
        assert not relation.insert(Tuple((second,)))
