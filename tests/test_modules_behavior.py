"""Behavioral tests for the module system: query-form choice, lazy cursors,
inter-module transparency, the rewritten-program listing, and the per-module
strategy mixing the paper calls its central contribution."""

import pytest

from repro import Session
from repro.language.ast import ExportDecl
from repro.modules.manager import ModuleManager
from repro.eval.context import EvalContext


class TestQueryFormChoice:
    def _manager(self):
        return ModuleManager(EvalContext())

    def test_exact_match_preferred(self):
        manager = self._manager()
        export = ExportDecl("p", 2, ("bf", "ff"))
        assert manager.choose_form(export, [True, False]) == "bf"

    def test_more_bound_form_wins(self):
        manager = self._manager()
        export = ExportDecl("p", 2, ("bf", "bb"))
        assert manager.choose_form(export, [True, True]) == "bb"

    def test_form_requiring_unbound_arg_skipped(self):
        manager = self._manager()
        export = ExportDecl("p", 2, ("bb",))
        # call binds only the first argument: bb unusable -> all-free fallback
        assert manager.choose_form(export, [True, False]) == "ff"

    def test_bound_call_can_use_free_form(self):
        manager = self._manager()
        export = ExportDecl("p", 2, ("ff",))
        assert manager.choose_form(export, [True, True]) == "ff"


class TestLazyCursors:
    PROGRAM = (
        "".join(f"edge({i}, {i+1}). " for i in range(30))
        + """
        module tc.
        export path(bf).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- path(X, Z), edge(Z, Y).
        end_module.
        """
    )

    def test_two_concurrent_cursors_independent(self):
        session = Session()
        session.consult_string(self.PROGRAM)
        first = session.query("path(0, Y)")
        second = session.query("path(10, Y)")
        a1 = first.get_next()
        b1 = second.get_next()
        a2 = first.get_next()
        assert a1 is not None and b1 is not None and a2 is not None
        assert len(first.all()) == 30
        assert len(second.all()) == 20

    def test_cursor_restart_via_iteration(self):
        session = Session()
        session.consult_string(self.PROGRAM)
        result = session.query("path(5, Y)")
        once = [a["Y"] for a in result]
        again = [a["Y"] for a in result]  # cached replay
        assert once == again


class TestListingAndStats:
    def test_listing_shows_technique_and_sccs(self):
        session = Session()
        session.consult_string(
            """
            module tc.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """
        )
        listing = session.modules.compiled_form("tc", "path", "bf").listing()
        assert "supplementary_magic" in listing
        assert "% scc:" in listing
        assert "m_path_bf" in listing

    def test_stats_reset(self):
        session = Session()
        session.insert("p", 1)
        session.query("p(X)").all()
        session.stats.reset()
        assert session.stats.snapshot()["inferences"] == 0


class TestStrategyMixing:
    """Section 5: 'the free mixing of different evaluation techniques in
    different modules ... is central to how different executions in
    different modules are combined cleanly.'"""

    PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4). blocked(3).

    module closure.
    export path(bf).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.

    module filterer.
    export open_path(bf).
    @pipelining.
    open_path(X, Y) :- path(X, Y), not blocked(Y).
    end_module.

    module summary.
    export fanout(ff).
    fanout(X, count(<Y>)) :- open_path(X, Y).
    end_module.
    """

    def test_three_strategies_chain(self):
        """materialized -> pipelined -> aggregating, one call chain."""
        session = Session()
        session.consult_string(self.PROGRAM)
        open_from_1 = sorted(a["Y"] for a in session.query("open_path(1, Y)"))
        assert open_from_1 == [2, 4]
        rows = {(a["X"], a["N"]) for a in session.query("fanout(X, N)")}
        assert (1, 2) in rows
        assert (3, 1) in rows  # 3 -> 4 only

    def test_module_call_stats_counted(self):
        session = Session()
        session.consult_string(self.PROGRAM)
        session.query("open_path(1, Y)").all()
        assert session.stats.module_calls >= 2


class TestAnswerSurface:
    def test_query_values_none_is_free(self):
        session = Session()
        session.insert("edge", 1, 2)
        session.insert("edge", 1, 3)
        result = session.query_values("edge", 1, None)
        assert sorted(r[1] for r in result.tuples()) == [2, 3]

    def test_answer_variables_dict(self):
        session = Session()
        session.insert("edge", 1, 2)
        answer = session.query("edge(A, B)").all()[0]
        assert answer.variables() == {"A": 1, "B": 2}

    def test_anonymous_variable_not_reported(self):
        session = Session()
        session.insert("edge", 1, 2)
        answer = session.query("edge(A, _)").all()[0]
        assert answer.variables() == {"A": 1}

    def test_len_of_result(self):
        session = Session()
        session.insert("p", 1)
        session.insert("p", 2)
        assert len(session.query("p(X)")) == 2
