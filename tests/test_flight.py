"""Flight recorder: an always-on bounded ring of recent events, dumped as a
post-mortem when a storage fault or resource-limit trip fires."""

import json
import os

import pytest

from repro import Session
from repro.errors import CoralError, ResourceLimitError, StorageError
from repro.eval.limits import ResourceLimits
from repro.faults import FaultInjector, SimulatedCrash
from repro.obs import FlightRecorder, Profiler

TC_PROGRAM = """
    edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).

    module tc.
    export path(bf).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
    end_module.
"""


def _read_dump(path):
    with open(path) as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    assert lines, "dump file is empty"
    header, events = lines[0], lines[1:]
    assert header["flight"] is True
    assert header["events"] == len(events)
    return header, events


class TestRing:
    def test_capacity_bounds_memory_recorded_counts_all(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(100):
            recorder.event(f"e{index}", "test")
        assert len(recorder) == 8
        assert recorder.recorded == 100
        names = [event["name"] for event in recorder.snapshot()]
        assert names == [f"e{index}" for index in range(92, 100)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_snapshot_rebases_timestamps_to_oldest(self):
        recorder = FlightRecorder(capacity=4)
        recorder.event("a", "test")
        recorder.event("b", "test")
        snapshot = recorder.snapshot()
        assert snapshot[0]["ts_us"] == 0.0
        assert snapshot[1]["ts_us"] >= 0.0

    def test_spans_record_duration(self):
        recorder = FlightRecorder(capacity=4)
        with recorder.span("work", "test", detail=1):
            pass
        (event,) = recorder.snapshot()
        assert event["ph"] == "X"
        assert event["dur_us"] >= 0.0
        assert event["args"] == {"detail": 1}

    def test_clear(self):
        recorder = FlightRecorder(capacity=4)
        recorder.event("a", "test")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.recorded == 1  # lifetime counter survives

    def test_dump_without_target_returns_none(self):
        recorder = FlightRecorder(capacity=4)
        recorder.event("a", "test")
        assert recorder.dump() is None
        assert recorder.dump_count == 0

    def test_dump_swallows_write_failures(self):
        recorder = FlightRecorder(
            capacity=4, dump_path="/nonexistent-dir/flight.jsonl"
        )
        recorder.event("a", "test")
        assert recorder.dump(reason="x") is None
        assert recorder.dump_count == 0


class TestSessionIntegration:
    def test_records_evaluation_events(self):
        session = Session()
        recorder = session.enable_flight_recorder(capacity=256)
        session.consult_string(TC_PROGRAM)
        answers = session.query("path(1, X)").all()
        assert len(answers) == 4
        names = {event["name"] for event in recorder.snapshot()}
        assert "fixpoint.iteration" in names
        assert "rule" in names

    def test_observer_slot_is_exclusive(self):
        session = Session()
        session.enable_flight_recorder()
        with pytest.raises(CoralError, match="already"):
            session.enable_flight_recorder()
        session.disable_flight_recorder()
        assert session.ctx.obs is None
        session.enable_flight_recorder()  # free again

    def test_profiler_chains_over_recorder(self):
        session = Session()
        recorder = session.enable_flight_recorder(capacity=256)
        session.consult_string(TC_PROGRAM)
        with session.profile(trace=False) as profiler:
            session.query("path(1, X)").all()
        assert profiler.profile.wall_time >= 0.0
        # the profiler borrowed the observer slot and gave it back
        assert session.ctx.obs is recorder

    def test_profiler_exception_restores_recorder(self):
        session = Session()
        recorder = session.enable_flight_recorder(capacity=256)
        session.consult_string(TC_PROGRAM)
        with pytest.raises(CoralError):
            with session.profile(trace=False):
                raise CoralError("boom mid-profile")
        assert session.ctx.obs is recorder


class TestAutomaticDumps:
    def test_injected_storage_crash_dumps_ring(self, tmp_path):
        """The acceptance scenario: a fault-injected storage crash produces
        a flight dump whose final events include the faulting point."""
        dump_path = str(tmp_path / "flight.jsonl")
        session = Session()
        recorder = session.enable_flight_recorder(
            capacity=128, dump_path=dump_path
        )
        injector = FaultInjector().crash_at("disk.write_page", 1)
        session.open_storage(str(tmp_path / "data"), faults=injector)
        assert injector.observer is recorder
        session.persistent_relation("p", 2)
        with pytest.raises(SimulatedCrash):
            for index in range(2000):
                session.insert("p", index, index)
                session.storage_pool.flush_all()
        assert os.path.exists(dump_path)
        header, events = _read_dump(dump_path)
        assert header["reason"] == "fault.crash:disk.write_page"
        # the tail must show the arrival at the faulting point, then the
        # fault instant itself
        tail_names = [event["name"] for event in events[-2:]]
        assert tail_names == ["disk.write_page", "fault.crash"]
        assert events[-1]["args"] == {"point": "disk.write_page"}

    def test_injected_io_failure_dumps_ring(self, tmp_path):
        dump_path = str(tmp_path / "flight.jsonl")
        session = Session()
        session.enable_flight_recorder(capacity=64, dump_path=dump_path)
        injector = FaultInjector().fail_at("server.write_page", 1)
        session.open_storage(str(tmp_path / "data"), faults=injector)
        session.persistent_relation("p", 2)
        with pytest.raises((StorageError, OSError)):
            for index in range(2000):
                session.insert("p", index, index)
                session.storage_pool.flush_all()
        header, events = _read_dump(dump_path)
        assert header["reason"].startswith("fault.fail")
        assert any(event["name"] == "fault.fail" for event in events)

    def test_resource_limit_trip_dumps_ring(self, tmp_path):
        dump_path = str(tmp_path / "flight.jsonl")
        session = Session()
        session.enable_flight_recorder(capacity=64, dump_path=dump_path)
        session.consult_string(TC_PROGRAM)
        session.ctx.limits = ResourceLimits(max_tuples=1)
        try:
            with pytest.raises(ResourceLimitError):
                session.query("path(1, X)").all()
        finally:
            session.ctx.limits = None
        assert os.path.exists(dump_path)
        header, events = _read_dump(dump_path)
        assert header["reason"] == "ResourceLimitError"
        assert events[-1]["name"] == "error.ResourceLimitError"

    def test_recorder_enabled_after_storage_still_sees_faults(self, tmp_path):
        """enable_flight_recorder after open_storage wires the injector
        observer too (the other order is covered above)."""
        dump_path = str(tmp_path / "flight.jsonl")
        session = Session()
        injector = FaultInjector()
        session.open_storage(str(tmp_path / "data"), faults=injector)
        recorder = session.enable_flight_recorder(
            capacity=64, dump_path=dump_path
        )
        assert injector.observer is recorder


class TestProfilerReuse:
    def test_profiler_is_single_use(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        profiler = session.profile(trace=False)
        with profiler:
            session.query("path(1, X)").all()
        with pytest.raises(CoralError, match="already used"):
            with profiler:
                pass

    def test_second_profiler_on_busy_context_rejected(self):
        session = Session()
        session.consult_string(TC_PROGRAM)
        with session.profile(trace=False):
            with pytest.raises(CoralError, match="already installed"):
                with session.profile(trace=False):
                    pass
