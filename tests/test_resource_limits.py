"""Resource guards: bounded evaluation of unbounded fixpoints.

A served system cannot let one runaway query iterate forever (the unbounded
bottom-up iterations of Section 5.3): `ResourceLimits` bounds wall clock and
derived tuples, supports cooperative cancellation, and — crucially — leaves
the session usable after tripping."""

import threading
import time

import pytest

from repro import ResourceLimitError, ResourceLimits, Session
from repro.errors import CoralError

CHAIN = "\n".join(f"edge({i}, {i + 1})." for i in range(400))

TC_MODULE = """
module tc.
export path(bf).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
end_module.
"""


def _tc_session(limits=None):
    session = Session(limits=limits)
    session.consult_string(TC_MODULE + CHAIN)
    return session


class TestTupleLimit:
    def test_query_under_limit_succeeds(self):
        session = _tc_session()
        answers = session.query("path(390, X)").all(max_tuples=100_000)
        assert len(answers) == 10

    def test_query_over_limit_raises(self):
        session = _tc_session()
        with pytest.raises(ResourceLimitError, match="derived"):
            session.query("path(0, X)").all(max_tuples=50)

    def test_session_stays_usable_after_limit(self):
        session = _tc_session()
        with pytest.raises(ResourceLimitError):
            session.query("path(0, X)").all(max_tuples=50)
        # the guard is uninstalled: the same query, unbounded, now succeeds
        assert len(session.query("path(0, X)").all()) == 400
        # and re-bounding still works
        with pytest.raises(ResourceLimitError):
            session.query("path(1, X)").all(max_tuples=10)
        assert len(session.query("path(395, X)").all(max_tuples=1000)) == 5

    def test_limit_is_a_coral_error(self):
        session = _tc_session()
        with pytest.raises(CoralError):
            session.query("path(0, X)").all(max_tuples=5)


class TestTimeout:
    def test_timeout_raises_promptly(self):
        session = _tc_session()
        started = time.monotonic()
        with pytest.raises(ResourceLimitError, match="timeout"):
            session.query("path(0, X)").all(timeout=0.005)
        # "promptly": within one fixpoint iteration, far under the full
        # evaluation (which takes well over a second on this chain)
        assert time.monotonic() - started < 2.0

    def test_generous_timeout_passes(self):
        session = _tc_session()
        assert len(session.query("path(398, X)").all(timeout=30.0)) == 2

    def test_session_default_limits_apply(self):
        session = _tc_session(limits=ResourceLimits(timeout=0.005))
        with pytest.raises(ResourceLimitError):
            session.query("path(0, X)").all()
        # a per-call override relaxes the session default
        assert len(session.query("path(398, X)").all(timeout=30.0)) == 2


class TestCancellation:
    def test_cancel_from_another_thread(self):
        limits = ResourceLimits()
        session = _tc_session(limits=limits)
        timer = threading.Timer(0.02, limits.cancel)
        timer.start()
        try:
            with pytest.raises(ResourceLimitError, match="cancelled"):
                session.query("path(0, X)").all()
        finally:
            timer.cancel()

    def test_pre_cancelled_guard_stops_immediately(self):
        limits = ResourceLimits()
        limits.cancel()
        session = _tc_session(limits=limits)
        with pytest.raises(ResourceLimitError):
            session.query("path(0, X)").all()


class TestOtherStrategies:
    def test_pipelined_module_honors_limits(self):
        session = Session()
        session.consult_string(
            """
            module walk.
            export reach(bf).
            @pipelining.
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            end_module.
            """
            + CHAIN
        )
        with pytest.raises(ResourceLimitError):
            session.query("reach(0, X)").all(timeout=0.005)
        assert len(session.query("reach(397, X)").all(timeout=30.0)) == 3

    def test_ordered_search_honors_limits(self):
        # ordered search stores answers in its own per-module tables, so the
        # tuple cap does not apply — but every subgoal consults the guard,
        # which sees cancellation (and the wall clock) immediately
        limits = ResourceLimits()
        limits.cancel()
        session = Session(limits=limits)
        session.consult_string(
            """
            module game.
            export win(b).
            @ordered_search.
            win(X) :- move(X, Y), not win(Y).
            end_module.
            """
            + "\n".join(f"move({i}, {i + 1})." for i in range(80))
        )
        with pytest.raises(ResourceLimitError, match="cancelled"):
            session.query("win(0)").all()

    def test_lazy_iteration_honors_limits(self):
        session = _tc_session(limits=ResourceLimits(max_tuples=50))
        with pytest.raises(ResourceLimitError):
            for _answer in session.query("path(0, X)"):
                pass


class TestGuardObject:
    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            ResourceLimits(timeout=0)
        with pytest.raises(ValueError):
            ResourceLimits(max_tuples=-1)

    def test_rearm_resets_budget(self):
        limits = ResourceLimits(max_tuples=5)

        class Stats:
            facts_inserted = 0

        stats = Stats()
        limits.start(stats)
        stats.facts_inserted = 5
        limits.check(stats)  # exactly at the cap: fine
        stats.facts_inserted = 6
        with pytest.raises(ResourceLimitError):
            limits.check(stats)
        limits.start(stats)  # re-arm: the baseline moves to 6
        stats.facts_inserted = 10
        limits.check(stats)

    def test_repr_mentions_bounds(self):
        text = repr(ResourceLimits(timeout=1.5, max_tuples=10))
        assert "1.5" in text and "10" in text
