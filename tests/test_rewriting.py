"""Unit tests for the rewriting transformations (paper Section 4.1)."""

import pytest

from repro.builtins import default_registry
from repro.errors import RewriteError, StratificationError
from repro.language import parse_module
from repro.rewriting import (
    FactoringNotApplicable,
    adorn_program,
    build_dependency_graph,
    check_stratified,
    condensation_order,
    existential_rewrite,
    factoring_rewrite,
    magic_rewrite,
    naive_rewrite,
    recursive_predicates,
    seminaive_rewrite,
    supmagic_rewrite,
)
from repro.rewriting.seminaive import ScanKind

REGISTRY = default_registry()


def is_builtin(name, arity):
    return REGISTRY.is_builtin(name, arity)


def tc_rules():
    module = parse_module(
        """
        module tc.
        export path(bf).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
        """
    )
    return module.rules


def heads(rules):
    return {rule.head.pred for rule in rules}


class TestAdornment:
    def test_tc_bf(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        assert adorned.query_pred == "path_bf"
        assert heads(adorned.rules) == {"path_bf"}
        recursive = [
            lit
            for rule in adorned.rules
            for lit in rule.body
            if lit.pred.startswith("path")
        ]
        assert all(lit.pred == "path_bf" for lit in recursive)

    def test_tc_fb_adorns_differently(self):
        adorned = adorn_program(tc_rules(), "path", 2, "fb", is_builtin)
        assert adorned.query_pred == "path_fb"
        # left-to-right sideways passing: edge(X,Z) binds Z, so the
        # recursive call path(Z, Y) has both arguments' status: Z bound via
        # edge, Y bound from the head: bb
        body_adornments = {
            lit.pred
            for rule in adorned.rules
            for lit in rule.body
            if lit.pred.startswith("path_")
        }
        assert body_adornments == {"path_bb"}

    def test_base_predicates_untouched(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        edges = [
            lit
            for rule in adorned.rules
            for lit in rule.body
            if lit.pred.startswith("edge")
        ]
        assert all(lit.pred == "edge" for lit in edges)

    def test_builtins_bind_variables(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            p(X, Y) :- Y = X + 1, q(Y, X).
            q(A, B) :- base(A, B).
            end_module.
            """
        )
        adorned = adorn_program(module.rules, "p", 2, "bf", is_builtin)
        q_literals = {
            lit.pred
            for rule in adorned.rules
            for lit in rule.body
            if lit.pred.startswith("q_")
        }
        assert q_literals == {"q_bb"}  # both bound after the '=' builtin

    def test_bad_adornment_rejected(self):
        with pytest.raises(RewriteError):
            adorn_program(tc_rules(), "path", 2, "bx", is_builtin)

    def test_unknown_query_pred_rejected(self):
        with pytest.raises(RewriteError):
            adorn_program(tc_rules(), "ghost", 2, "bf", is_builtin)


class TestMagic:
    def test_guard_added_to_every_rule(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        rewritten = magic_rewrite(adorned, is_builtin)
        guarded = [r for r in rewritten.rules if r.head.pred == "path_bf"]
        assert len(guarded) == 2
        for rule in guarded:
            assert rule.body[0].pred == "m_path_bf"

    def test_magic_rules_generated(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        rewritten = magic_rewrite(adorned, is_builtin)
        magic_rules = [r for r in rewritten.rules if r.head.pred == "m_path_bf"]
        assert len(magic_rules) == 1  # one derived body literal
        assert rewritten.magic_pred == "m_path_bf"
        assert rewritten.bound_positions == (0,)

    def test_magic_pred_arity_is_bound_count(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        rewritten = magic_rewrite(adorned, is_builtin)
        magic_rule = [r for r in rewritten.rules if r.head.pred == "m_path_bf"][0]
        assert len(magic_rule.head.args) == 1


class TestSupplementaryMagic:
    def test_sup_relations_created_for_nonempty_prefix(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        rewritten = supmagic_rewrite(adorned, is_builtin)
        sup_heads = [h for h in heads(rewritten.rules) if h.startswith("sup_")]
        assert sup_heads  # edge(X, Z) prefix materialized once

    def test_sup_magic_equivalent_answer_pred(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        rewritten = supmagic_rewrite(adorned, is_builtin)
        assert rewritten.answer_pred == "path_bf"
        assert rewritten.technique == "supplementary_magic"

    def test_goalid_variant_wraps_goal_term(self):
        adorned = adorn_program(tc_rules(), "path", 2, "bf", is_builtin)
        rewritten = supmagic_rewrite(adorned, is_builtin, use_goal_ids=True)
        assert rewritten.technique == "supplementary_magic_goalid"
        sup_rules = [
            r for r in rewritten.rules if r.head.pred.startswith("sup_")
        ]
        assert sup_rules
        from repro.terms import Functor

        for rule in sup_rules:
            assert isinstance(rule.head.args[0], Functor)
            assert rule.head.args[0].name == "goal"


class TestSemiNaive:
    def test_versions_per_recursive_literal(self):
        module = parse_module(
            """
            module m.
            export p(ff).
            p(X, Y) :- p(X, Z), p(Z, Y).
            p(X, Y) :- e(X, Y).
            end_module.
            """
        )
        once, delta = seminaive_rewrite(
            module.rules, {("p", 2)}, is_builtin
        )
        assert len(once) == 1  # the exit rule
        assert len(delta) == 2  # one version per recursive literal

    def test_triangular_scan_kinds(self):
        module = parse_module(
            """
            module m.
            export p(ff).
            p(X, Y) :- p(X, Z), p(Z, Y).
            end_module.
            """
        )
        _once, delta = seminaive_rewrite(module.rules, {("p", 2)}, is_builtin)
        first, second = delta
        assert [l.kind for l in first.body] == [ScanKind.DELTA, ScanKind.OLD]
        assert [l.kind for l in second.body] == [ScanKind.FULL, ScanKind.DELTA]

    def test_nonrecursive_literals_are_all(self):
        once, delta = seminaive_rewrite(tc_rules(), {("path", 2)}, is_builtin)
        version = delta[0]
        kinds = {l.literal.pred: l.kind for l in version.body}
        assert kinds["edge"] == ScanKind.ALL
        assert kinds["path"] == ScanKind.DELTA

    def test_naive_rewrite_full_scans(self):
        once, every = naive_rewrite(tc_rules(), {("path", 2)}, is_builtin)
        assert len(once) == 1 and len(every) == 1
        assert all(l.kind == ScanKind.ALL for l in every[0].body)


class TestDependencyGraph:
    def test_scc_order_callees_first(self):
        module = parse_module(
            """
            module m.
            export a(f).
            a(X) :- b(X).
            b(X) :- c(X).
            c(X) :- base(X).
            end_module.
            """
        )
        graph = build_dependency_graph(module.rules, is_builtin)
        order = condensation_order(graph)
        names = [sorted(component)[0][0] for component in order]
        assert names.index("c") < names.index("b") < names.index("a")

    def test_mutual_recursion_single_scc(self):
        module = parse_module(
            """
            module m.
            export even(b).
            even(X) :- next(Y, X), odd(Y).
            odd(X) :- next(Y, X), even(Y).
            end_module.
            """
        )
        graph = build_dependency_graph(module.rules, is_builtin)
        components = [c for c in condensation_order(graph) if len(c) > 1]
        assert len(components) == 1
        assert {pred for pred, _ in components[0]} == {"even", "odd"}

    def test_self_recursion_detected(self):
        graph = build_dependency_graph(tc_rules(), is_builtin)
        for component in condensation_order(graph):
            if ("path", 2) in component:
                assert recursive_predicates(graph, component) == {("path", 2)}

    def test_nonrecursive_singleton_not_recursive(self):
        module = parse_module(
            "module m. export p(f). p(X) :- base(X). end_module."
        )
        graph = build_dependency_graph(module.rules, is_builtin)
        (component,) = condensation_order(graph)
        assert recursive_predicates(graph, component) == set()

    def test_stratified_negation_accepted(self):
        module = parse_module(
            """
            module m.
            export q(f).
            p(X) :- base(X).
            q(X) :- other(X), not p(X).
            end_module.
            """
        )
        graph = build_dependency_graph(module.rules, is_builtin)
        strata = check_stratified(graph)
        assert strata[("q", 1)] > strata[("p", 1)]

    def test_negative_cycle_rejected(self):
        module = parse_module(
            """
            module m.
            export win(b).
            win(X) :- move(X, Y), not win(Y).
            end_module.
            """
        )
        graph = build_dependency_graph(module.rules, is_builtin)
        with pytest.raises(StratificationError):
            check_stratified(graph)

    def test_aggregation_cycle_rejected(self):
        module = parse_module(
            """
            module m.
            export p(ff).
            p(X, min(<C>)) :- p(X, C).
            end_module.
            """
        )
        graph = build_dependency_graph(module.rules, is_builtin)
        with pytest.raises(StratificationError):
            check_stratified(graph)


class TestExistentialRewrite:
    def test_unused_position_dropped(self):
        module = parse_module(
            """
            module m.
            export reach(b).
            reach(X) :- t(X, Y).
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, Z), t(Z, Y).
            end_module.
            """
        )
        rewritten = existential_rewrite(module.rules, "reach", 1, is_builtin)
        t_heads = [r.head for r in rewritten if r.head.pred.startswith("t")]
        assert t_heads
        assert all(len(head.args) == 1 for head in t_heads)

    def test_join_variable_kept(self):
        module = parse_module(
            """
            module m.
            export q(b).
            q(X) :- t(X, Y), uses(Y).
            t(X, Y) :- e(X, Y).
            end_module.
            """
        )
        rewritten = existential_rewrite(module.rules, "q", 1, is_builtin)
        t_heads = [r.head for r in rewritten if r.head.pred.startswith("t")]
        assert all(len(head.args) == 2 for head in t_heads)

    def test_no_change_returns_same_rules(self):
        rules = tc_rules()
        assert existential_rewrite(rules, "path", 2, is_builtin) == list(rules)


class TestFactoring:
    def test_right_linear_accepted(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            p(X, Y) :- e(X, Y).
            p(X, Y) :- e(X, Z), p(Z, Y).
            end_module.
            """
        )
        rewritten = factoring_rewrite(module.rules, "p", "bf", is_builtin)
        assert rewritten.technique == "factoring"
        assert rewritten.answer_positions == (1,)
        assert {r.head.pred for r in rewritten.rules} == {"ctx_p", "fans_p"}

    def test_left_linear_rejected(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            p(X, Y) :- e(X, Y).
            p(X, Y) :- p(X, Z), e(Z, Y).
            end_module.
            """
        )
        with pytest.raises(FactoringNotApplicable):
            factoring_rewrite(module.rules, "p", "bf", is_builtin)

    def test_all_free_rejected(self):
        module = parse_module(
            """
            module m.
            export p(ff).
            p(X, Y) :- e(X, Y).
            p(X, Y) :- e(X, Z), p(Z, Y).
            end_module.
            """
        )
        with pytest.raises(FactoringNotApplicable):
            factoring_rewrite(module.rules, "p", "ff", is_builtin)

    def test_nonlinear_rejected(self):
        module = parse_module(
            """
            module m.
            export p(bf).
            p(X, Y) :- e(X, Y).
            p(X, Y) :- p(X, Z), p(Z, Y).
            end_module.
            """
        )
        with pytest.raises(FactoringNotApplicable):
            factoring_rewrite(module.rules, "p", "bf", is_builtin)


class TestExistentialProtection:
    def test_aggregate_selection_predicates_not_projected(self):
        """Regression (found by fuzzing): projecting a position out of a
        predicate carrying an @aggregate_selection detaches the selection
        and leaks dominated facts downstream."""
        from repro import Session

        session = Session()
        session.consult_string(
            """
            obs(0, 0, 0). obs(0, 1, 1).
            module m.
            export peak(bf).
            @aggregate_selection keep(G, V, I) (G) max(V).
            keep(G, V, I) :- obs(G, V, I).
            peak(G, V) :- keep(G, V, I).
            end_module.
            """
        )
        assert sorted(set(a["V"] for a in session.query("peak(0, V)"))) == [1]
        compiled = session.modules.compiled_form("m", "peak", "bf")
        assert compiled.constraints  # the selection actually attached
