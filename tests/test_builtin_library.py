"""Tests for the utility builtin library: strings, term inspection, and the
extended list operations (the paper's 'utilities and built-in libraries')."""

import pytest

from repro import Session
from repro.errors import EvaluationError, InstantiationError


@pytest.fixture
def session():
    return Session()


def answers(session, module_body, query):
    session.consult_string(f"module t_{abs(hash(module_body)) % 10000}.\n{module_body}\nend_module.")
    return session.query(query)


def one_value(session, head_args, body, query_args, var="X"):
    """Define p(head_args) :- body and query p(query_args), returning X."""
    session.consult_string(
        f"module m.\nexport p({'f' * len(head_args.split(','))}).\n"
        f"p({head_args}) :- {body}.\nend_module."
    )
    return [a[var] for a in session.query(f"p({query_args})")]


class TestStringBuiltins:
    def test_concat_forward(self, session):
        got = one_value(session, "X", 'string_concat("ab", "cd", X)', "X")
        assert got == ["abcd"]

    def test_concat_suffix_subtraction(self, session):
        got = one_value(session, "X", 'string_concat("ab", X, "abcd")', "X")
        assert got == ["cd"]

    def test_concat_prefix_subtraction(self, session):
        got = one_value(session, "X", 'string_concat(X, "cd", "abcd")', "X")
        assert got == ["ab"]

    def test_concat_enumerates_splits(self, session):
        session.consult_string(
            """
            module m.
            export splits(ff).
            splits(A, B) :- string_concat(A, B, "abc").
            end_module.
            """
        )
        assert len(session.query("splits(A, B)").all()) == 4

    def test_length(self, session):
        assert one_value(session, "X", 'string_length("hello", X)', "X") == [5]

    def test_atom_string_both_ways(self, session):
        assert one_value(session, "X", "atom_string(john, X)", "X") == ["john"]
        session2 = Session()
        assert one_value(session2, "X", 'atom_string(X, "mary")', "X") == ["mary"]

    def test_case_conversion(self, session):
        assert one_value(session, "X", 'string_upper("abc", X)', "X") == ["ABC"]

    def test_number_string(self, session):
        assert one_value(session, "X", 'number_string(X, "42")', "X") == [42]
        session2 = Session()
        assert one_value(session2, "X", "number_string(17, X)", "X") == ["17"]

    def test_number_string_non_numeric_fails(self, session):
        assert one_value(session, "X", 'number_string(X, "nope")', "X") == []

    def test_sub_string(self, session):
        assert one_value(session, "X", 'sub_string("hello", "ell"), X = 1', "X") == [1]

    def test_unbound_concat_raises(self, session):
        session.consult_string(
            "module m. export p(f). p(X) :- string_concat(A, B, X). end_module."
        )
        with pytest.raises(InstantiationError):
            session.query("p(X)").all()


class TestTermInspection:
    def test_functor_decompose(self, session):
        session.consult_string(
            """
            shape(circle(3)).
            module m.
            export info(ff).
            info(N, A) :- shape(S), functor(S, N, A).
            end_module.
            """
        )
        rows = session.query("info(N, A)").tuples()
        assert rows == [("circle", 1)]

    def test_functor_build(self, session):
        session.consult_string(
            """
            module m.
            export build(f).
            build(T) :- functor(T, point, 2).
            end_module.
            """
        )
        answer = session.query("build(T)").all()[0]
        term = answer.term("T")
        assert term.name == "point" and len(term.args) == 2

    def test_arg_extracts(self, session):
        session.consult_string(
            """
            fact(f(10, 20, 30)).
            module m.
            export second(f).
            second(A) :- fact(T), arg(2, T, A).
            end_module.
            """
        )
        assert [a["A"] for a in session.query("second(A)")] == [20]

    def test_arg_enumerates(self, session):
        session.consult_string(
            """
            fact(f(10, 20)).
            module m.
            export pairs(ff).
            pairs(N, A) :- fact(T), arg(N, T, A).
            end_module.
            """
        )
        assert sorted(session.query("pairs(N, A)").tuples()) == [(1, 10), (2, 20)]

    def test_ground_check(self, session):
        session.consult_string(
            """
            thing(f(1)). thing(g(X)).
            module m.
            export solid(f).
            solid(T) :- thing(T), ground(T).
            end_module.
            """
        )
        results = session.query("solid(T)").all()
        assert len(results) == 1

    def test_is_list(self, session):
        session.consult_string(
            """
            candidate([1, 2]). candidate(f(1)). candidate([]).
            module m.
            export listy(f).
            listy(T) :- candidate(T), is_list(T).
            end_module.
            """
        )
        assert len(session.query("listy(T)").all()) == 2

    def test_copy_term_freshens(self, session):
        session.consult_string(
            """
            template(pair(X, X)).
            module m.
            export stamped(f).
            stamped(C) :- template(T), copy_term(T, C), arg(1, C, 7).
            end_module.
            """
        )
        answer = session.query("stamped(C)").all()
        assert len(answer) == 1


class TestListLibrary:
    def test_reverse(self, session):
        assert one_value(session, "X", "reverse([1, 2, 3], X)", "X") == [[3, 2, 1]]

    def test_nth_lookup(self, session):
        assert one_value(session, "X", "nth(2, [a, b, c], X)", "X") == ["b"]

    def test_nth_enumerates(self, session):
        session.consult_string(
            """
            module m.
            export idx(ff).
            idx(N, E) :- nth(N, [x, y], E).
            end_module.
            """
        )
        assert sorted(session.query("idx(N, E)").tuples()) == [(1, "x"), (2, "y")]

    def test_last(self, session):
        assert one_value(session, "X", "last([1, 2, 9], X)", "X") == [9]

    def test_last_empty_fails(self, session):
        assert one_value(session, "X", "last([], X)", "X") == []

    def test_sum_min_max(self, session):
        assert one_value(session, "X", "sum_list([1, 2, 3], X)", "X") == [6]
        s2, s3 = Session(), Session()
        assert one_value(s2, "X", "max_list([4, 9, 2], X)", "X") == [9]
        assert one_value(s3, "X", "min_list([4, 9, 2], X)", "X") == [2]

    def test_sort_dedups(self, session):
        assert one_value(session, "X", "sort([3, 1, 2, 1], X)", "X") == [[1, 2, 3]]

    def test_msort_keeps_duplicates(self, session):
        assert one_value(session, "X", "msort([3, 1, 2, 1], X)", "X") == [
            [1, 1, 2, 3]
        ]

    def test_improper_list_rejected(self, session):
        session.consult_string(
            "module m. export p(f). p(X) :- reverse(f(1), X). end_module."
        )
        with pytest.raises(EvaluationError):
            session.query("p(X)").all()

    def test_library_composes_in_recursion(self, session):
        """The library predicates interoperate with recursive rules."""
        session.consult_string(
            """
            edge(1, 2). edge(2, 3). edge(3, 4).

            module m.
            export best_path(bbf).
            trail(X, Y, [X, Y]) :- edge(X, Y).
            trail(X, Y, P) :- edge(X, Z), trail(Z, Y, P0), append([X], P0, P).
            best_path(X, Y, L) :- trail(X, Y, P), length(P, N), L = N - 1.
            end_module.
            """
        )
        answers = sorted(a["L"] for a in session.query("best_path(1, 4, L)"))
        assert answers == [3]
