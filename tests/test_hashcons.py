"""Unit + property tests for lazy hash-consing (paper Section 3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.terms import (
    Atom,
    Functor,
    HashConsTable,
    Int,
    Str,
    Var,
    hc_id,
    make_list,
)
from repro.terms.hashcons import GLOBAL_TABLE, canonical


def f(*args):
    return Functor("f", args)


class TestHashCons:
    def test_equal_terms_same_id(self):
        assert hc_id(f(Int(1), Atom("a"))) == hc_id(f(Int(1), Atom("a")))

    def test_unequal_terms_different_id(self):
        assert hc_id(f(Int(1))) != hc_id(f(Int(2)))

    def test_id_distinguishes_functor_name(self):
        assert hc_id(Functor("g", (Int(1),))) != hc_id(f(Int(1)))

    def test_id_distinguishes_nested_structure(self):
        assert hc_id(f(f(Int(1)))) != hc_id(f(Int(1)))

    def test_nonground_rejected(self):
        with pytest.raises(ValueError):
            hc_id(f(Var("X")))

    def test_laziness_no_id_until_demanded(self):
        term = f(Int(1), Int(2), Int(3))
        assert term._hc_id is None
        hc_id(term)
        assert term._hc_id is not None

    def test_id_cached_on_term(self):
        term = f(Str("abc"))
        first = hc_id(term)
        assert hc_id(term) == first

    def test_canonical_representative_is_shared(self):
        a = f(Int(1))
        b = f(Int(1))
        assert canonical(a) is canonical(b)

    def test_fresh_table_isolated(self):
        table = HashConsTable()
        term = Functor("isolated", (Int(1),))
        ident = table.hc_id(term)
        assert table.term_for(ident) is term
        assert len(table) == 1

    def test_table_clear(self):
        table = HashConsTable()
        table.hc_id(Functor("x", (Int(1),)))
        table.clear()
        assert len(table) == 0

    def test_type_orthogonality_mixed_children(self):
        """Identifiers compose across types without integration work."""
        mixed1 = f(Int(1), Str("1"), Atom("one"), make_list([Int(1)]))
        mixed2 = f(Int(1), Str("1"), Atom("one"), make_list([Int(1)]))
        assert hc_id(mixed1) == hc_id(mixed2)


ground_terms = st.recursive(
    st.one_of(
        st.integers(-50, 50).map(Int),
        st.sampled_from("abcde").map(Atom),
        st.text("xyz", max_size=3).map(Str),
    ),
    lambda children: st.lists(children, min_size=1, max_size=3).map(
        lambda args: Functor("g", args)
    ),
    max_leaves=10,
)


class TestHashConsProperties:
    @given(ground_terms, ground_terms)
    def test_id_equality_iff_term_equality(self, left, right):
        if not isinstance(left, Functor):
            left = Functor("wrap", (left,))
        if not isinstance(right, Functor):
            right = Functor("wrap", (right,))
        assert (hc_id(left) == hc_id(right)) == (left == right)

    @given(ground_terms)
    def test_ground_key_stable(self, term):
        assert term.ground_key() == term.ground_key()
