"""Concurrency tests: many clients sharing one server.

The acceptance bar from the server subsystem issue: >= 8 concurrent
clients issuing overlapping transitive-closure queries (plus interleaved
updates) against one server get correct, complete answer sets; a client
that stops fetching causes no further evaluation work server-side; and a
client that dies mid-stream leaks no cursors.
"""

import socket
import threading
import time

import pytest

from repro import Session
from repro.client import RemoteSession
from repro.eval.limits import ResourceLimits
from repro.errors import ResourceLimitError
from repro.server import CoralServer, PROTOCOL_VERSION
from repro.server.protocol import read_frame, write_frame

CHAIN = 10  # path over a 10-node chain: 45 answers for path(X, Y)?


def _tc_program(chain=CHAIN):
    edges = " ".join(f"edge({i}, {i + 1})." for i in range(1, chain))
    return f"""
        {edges}

        module tc.
        export path(bf, ff).
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
    """


def _expected_from(start, chain=CHAIN):
    return sorted((start, y) for y in range(start + 1, chain + 1))


@pytest.fixture
def server():
    session = Session()
    session.consult_string(_tc_program())
    with CoralServer(session, port=0) as srv:
        yield srv


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestConcurrentClients:
    def test_eight_clients_overlapping_tc_queries(self, server):
        errors = []
        results = {}

        def worker(index):
            start = 1 + (index % 4)  # overlapping bound-first queries
            try:
                with RemoteSession(*server.address, batch_size=3) as db:
                    for _ in range(3):
                        answers = sorted(db.query(f"path({start}, Y)").tuples())
                        expected = _expected_from(start)
                        if answers != expected:
                            errors.append((index, answers, expected))
                    results[index] = True
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append((index, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert len(results) == 8
        assert server.open_cursors() == 0

    def test_queries_with_interleaved_updates(self, server):
        """Writers hammer a scratch relation while readers drain TC
        queries; the TC answer sets must be unaffected and the scratch
        relation must net out exactly."""
        errors = []
        stop = threading.Event()

        def reader(index):
            try:
                with RemoteSession(*server.address, batch_size=4) as db:
                    while not stop.is_set():
                        got = sorted(db.query("path(1, Y)").tuples())
                        if got != _expected_from(1):
                            errors.append(("reader", index, got))
                            return
            except Exception as exc:  # noqa: BLE001
                errors.append(("reader", index, repr(exc)))

        def writer(index):
            try:
                with RemoteSession(*server.address) as db:
                    for round_no in range(25):
                        assert db.insert("scratch", index, round_no)
                        assert db.delete("scratch", index, round_no)
                    db.insert("scratch", index, "kept")
            except Exception as exc:  # noqa: BLE001
                errors.append(("writer", index, repr(exc)))

        readers = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        writers = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=30)
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not errors, errors
        with RemoteSession(*server.address) as db:
            kept = sorted(db.query("scratch(W, kept)").tuples())
            assert kept == [(w, "kept") for w in range(4)]
            assert db.stats()["cursors"]["open"] == 0

    def test_unfetched_batches_cause_no_server_work(self, server):
        """Backpressure: after the first FETCH, an idle client costs the
        server nothing — no pulls, no answers, no evaluation."""
        pulls = server.metrics.counter("server.cursor.pulls", "")
        answers = server.metrics.counter("server.answers.sent", "")
        with RemoteSession(*server.address, batch_size=2) as db:
            result = db.query("path(1, Y)")
            first = result.get_next()
            assert first is not None
            pulled_after_first_batch = pulls.value()
            sent_after_first_batch = answers.value()
            # exactly one batch was pulled (2 answers), not the full set
            assert pulled_after_first_batch == 2
            assert sent_after_first_batch == 2
            facts_before = server.session.stats.snapshot()["facts_inserted"]
            time.sleep(0.2)  # idle: server must do nothing on our behalf
            assert pulls.value() == pulled_after_first_batch
            assert answers.value() == sent_after_first_batch
            assert (
                server.session.stats.snapshot()["facts_inserted"]
                == facts_before
            )
            result.close()
        assert server.open_cursors() == 0

    def test_abrupt_disconnect_mid_stream_frees_cursors(self, server):
        """A client that dies without BYE (socket torn down mid-stream)
        must leak no cursors and must not affect other clients."""
        sock = socket.create_connection(server.address, timeout=5.0)
        write_frame(sock, {"op": "HELLO", "version": PROTOCOL_VERSION})
        read_frame(sock)
        write_frame(sock, {"op": "QUERY", "query": "path(1, Y)"})
        header, _ = read_frame(sock)
        cursor = header["cursor"]
        write_frame(sock, {"op": "FETCH", "cursor": cursor, "max": 2})
        header, _ = read_frame(sock)
        assert header["count"] == 2 and not header["done"]
        assert server.open_cursors() == 1
        sock.close()  # die mid-stream, cursor still open server-side
        assert _wait_until(lambda: server.open_cursors() == 0)
        # an unrelated client is unaffected and sees zero open cursors
        with RemoteSession(*server.address) as db:
            assert sorted(db.query("path(1, Y)").tuples()) == _expected_from(1)
            assert db.stats()["cursors"]["open"] == 0

    def test_per_request_limits_bound_each_fetch(self):
        session = Session()
        session.consult_string(_tc_program(40))
        # path(1, Y) is bf: its magic-rewritten evaluation materializes
        # eagerly on the first pull, deriving ~118 facts on a 40-chain —
        # over the cap.  path(35, Y) derives ~26 — under it.
        limits = ResourceLimits(max_tuples=100)
        with CoralServer(session, port=0, limits=limits) as srv:
            with RemoteSession(*srv.address) as db:
                with pytest.raises(ResourceLimitError):
                    db.query("path(1, Y)").all()
                # the failed cursor was freed, and the session survives:
                # a small query still answers (its evaluation fits the cap)
                assert db.stats()["cursors"]["open"] == 0
                small = sorted(db.query("path(35, Y)").tuples())
                assert small == [(35, y) for y in range(36, 41)]

    def test_limits_are_per_fetch_not_per_cursor(self):
        """The cap bounds each FETCH request, not the cursor's lifetime:
        a lazily-evaluated (ff) query that derives far more facts in total
        than the cap still drains fine, because no single batch-sized pull
        exceeds it.  One slow-but-steady client is backpressure, not abuse."""
        session = Session()
        session.consult_string(_tc_program(40))
        limits = ResourceLimits(max_tuples=100)
        with CoralServer(session, port=0, limits=limits) as srv:
            with RemoteSession(*srv.address, batch_size=64) as db:
                answers = db.query("path(X, Y)").all()
                assert len(answers) == sum(range(1, 40))  # 780 in total

    def test_many_sequential_connections_do_not_leak(self, server):
        for _ in range(20):
            with RemoteSession(*server.address) as db:
                db.query("edge(1, X)").all()
        assert _wait_until(
            lambda: server.stats()["connections"]["active"] == 0
        )
        assert server.open_cursors() == 0
