"""Regression tests for :meth:`Session.close`: idempotent, exception-safe,
and usable from ``finally`` blocks / context managers without double-fault
hazards.  (A served session is long-lived and closed on shutdown paths that
may already be handling an error — close() must never make things worse.)
"""

import pytest

from repro import Session, SessionClosedError, StorageError
from repro.faults import FaultInjector


def _persist_some(session):
    session.persistent_relation("kv", 2)
    session.insert("kv", 1, "one")
    session.insert("kv", 2, "two")


class TestSessionClose:
    def test_close_without_storage_is_a_noop(self):
        session = Session()
        session.close()
        session.close()

    def test_double_close_with_storage(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.close()
        session.close()  # second close: no flush, no raise

    def test_close_after_external_server_close(self, tmp_path):
        """If the storage server was already torn down (an injected crash
        test abandoning it, an explicit close), Session.close must skip the
        flush instead of raising against closed page files."""
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session._server.close()
        session.close()  # must not raise

    def test_failed_flush_still_releases_and_second_close_is_clean(
        self, tmp_path
    ):
        """A flush failure propagates (the caller must know the data did not
        all reach disk) but the session's references are cleared first, so a
        retry in an outer finally block is a clean no-op, not a double
        fault."""
        faults = FaultInjector()
        session = Session()
        session.open_storage(str(tmp_path), faults=faults)
        _persist_some(session)
        faults.fail_at("buffer.flush", hit=1)
        with pytest.raises(StorageError):
            session.close()
        assert session._pool is None and session._server is None
        session.close()  # the retry path: nothing left to do, no raise

    def test_context_manager_closes(self, tmp_path):
        with Session(data_directory=str(tmp_path)) as session:
            _persist_some(session)
        session.close()  # already closed by __exit__; still a no-op

    def test_session_usable_for_memory_work_after_close(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.close()
        session.insert("scratch", 1)
        assert session.query("scratch(X)").tuples() == [(1,)]


class TestSessionClosedError:
    """Touching *persistent* state after close must raise a clear
    :class:`SessionClosedError`, not silently reopen the page files (the
    old behavior: StorageServer._file lazily resurrected closed files, so a
    post-close query read stale pages as if nothing happened)."""

    def test_query_after_close_raises(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.close()
        with pytest.raises(SessionClosedError, match="closed"):
            session.query("kv(X, Y)").all()

    def test_insert_after_close_raises(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.close()
        with pytest.raises(SessionClosedError, match="closed"):
            session.insert("kv", 3, "three")

    def test_delete_after_close_raises(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.close()
        with pytest.raises(SessionClosedError, match="closed"):
            session.delete("kv", 1, "one")

    def test_is_a_storage_error(self, tmp_path):
        """Callers that caught StorageError before keep working."""
        assert issubclass(SessionClosedError, StorageError)
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.close()
        with pytest.raises(StorageError):
            session.query("kv(X, Y)").all()

    def test_derived_query_over_persistent_base_raises(self, tmp_path):
        session = Session(data_directory=str(tmp_path))
        _persist_some(session)
        session.consult_string(
            """
            module m.
            export val(bf).
            val(K, V) :- kv(K, V).
            end_module.
            """
        )
        assert session.query("val(1, V)").tuples() == [(1, "one")]
        session.close()
        with pytest.raises(StorageError):
            session.query("val(1, V)").all()


class TestQueryResultClose:
    def test_close_is_idempotent_and_keeps_cache(self):
        session = Session()
        for i in range(5):
            session.insert("n", i)
        result = session.query("n(X)")
        first = result.get_next()
        assert first is not None
        result.close()
        result.close()
        assert result.get_next() is None
        assert result.all() == [first]
