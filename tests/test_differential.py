"""Differential testing harness (ISSUE 4, satellite 1).

A seeded generator produces small stratified Datalog programs plus
query/update interleavings, and every evaluation configuration —
semi-naive (BSN and PSN), pipelined, compiled (closure and push
backends), magic-on, magic-off, memo-on and memo-off — must return
identical answer multisets.

The generator's rule shapes are biased toward the compiled class (flat
positive literals, comparisons, arithmetic ``=``) so well over half of all
generated rules actually exercise the code generators; negation cases
exercise the per-rule interpreter fallback under ``@compiled(push).``.

Materialized engines use set semantics, so answers are compared as sorted
duplicate-free lists; the pipelined engine enumerates one answer per proof
and is compared as a set.  Failures dump a standalone repro file under
``tests/_diff_failures/`` so a seed can be replayed without the harness.

``REPRO_DIFF_CASES`` overrides the number of generated cases (default 200:
120 static programs + 80 query/update interleavings).

The **streamed-deltas mode** (ISSUE 8, satellite 1) points the same
generator at live queries: subscribe to a generated query, replay a random
insert/delete schedule, fold the emitted delta stream into the initial
snapshot, and require the folded view to equal a cold re-evaluation over
the final fact state at every checkpoint.  ``REPRO_LIVE_SCHEDULES``
overrides the number of schedules (default 100).
"""

import os
import random
from pathlib import Path

import pytest

from repro import Session

_FAILURE_DIR = Path(__file__).parent / "_diff_failures"

_TOTAL_CASES = max(10, int(os.environ.get("REPRO_DIFF_CASES", "200")))
_N_STATIC = (_TOTAL_CASES * 3) // 5
_N_INTERLEAVED = _TOTAL_CASES - _N_STATIC
_N_LIVE = max(10, int(os.environ.get("REPRO_LIVE_SCHEDULES", "100")))


# ---------------------------------------------------------------------------
# program generator
# ---------------------------------------------------------------------------


class GeneratedCase:
    """A random stratified program: base facts, derived rules, queries."""

    def __init__(self, seed: int, allow_negation: bool) -> None:
        rng = random.Random(seed)
        self.seed = seed
        self.domain = list(range(1, rng.randint(4, 7) + 1))
        self.base_preds = ["b0", "b1"]
        self.derived_preds = [f"d{i}" for i in range(rng.randint(2, 4))]
        self.facts = {
            pred: self._random_facts(rng) for pred in self.base_preds
        }
        self.recursive = False
        self.has_negation = False
        self.rules = []
        for level, pred in enumerate(self.derived_preds):
            for _ in range(rng.randint(1, 3)):
                self.rules.append(
                    self._random_rule(rng, pred, level, allow_negation)
                )
        self.queries = self._random_queries(rng)

    def _random_facts(self, rng):
        count = rng.randint(3, 8)
        universe = [
            (x, y) for x in self.domain for y in self.domain if x != y
        ]
        return set(rng.sample(universe, min(count, len(universe))))

    def _positive_sources(self, level):
        """Predicates a positive body literal at this stratum may use."""
        return self.base_preds + self.derived_preds[:level]

    def _random_rule(self, rng, pred, level, allow_negation):
        sources = self._positive_sources(level)
        # copy/swap/chain/recursive/guard/incr are all in the compiled
        # class, so most generated rules exercise the code generators;
        # negation (appended below) forces the per-rule fallback
        shape = rng.choice(
            ["copy", "swap", "chain", "chain", "recursive", "guard", "incr"]
        )
        if shape == "recursive" and level == 0:
            shape = "chain"
        if shape == "copy":
            body = [f"{rng.choice(sources)}(X, Y)"]
        elif shape == "swap":
            body = [f"{rng.choice(sources)}(Y, X)"]
        elif shape == "chain":
            body = [f"{rng.choice(sources)}(X, Z)", f"{rng.choice(sources)}(Z, Y)"]
        elif shape == "guard":
            # a comparison over bound values: compiled as an inline guard
            body = [f"{rng.choice(sources)}(X, Y)", "X < Y"]
        elif shape == "incr":
            # arithmetic assignment: compiled as inline arithmetic
            body = [f"{rng.choice(sources)}(X, Z)", "Y = Z + 1"]
        else:  # recursive: d_i joins a lower predicate with itself
            self.recursive = True
            body = [f"{rng.choice(sources)}(X, Z)", f"{pred}(Z, Y)"]
        if allow_negation and shape not in ("recursive", "incr") and rng.random() < 0.4:
            # strictly-lower stratum, all variables bound: stratified + safe
            self.has_negation = True
            body.append(f"not {rng.choice(sources)}(X, Y)")
        return f"{pred}(X, Y) :- {', '.join(body)}."

    def _random_queries(self, rng):
        queries = []
        free_pred = rng.choice(self.derived_preds)
        queries.append(f"{free_pred}(X, Y)")
        for _ in range(2):
            queries.append(
                f"{rng.choice(self.derived_preds)}({rng.choice(self.domain)}, Y)"
            )
        return queries

    def program(self, flags: str = "") -> str:
        lines = []
        for pred in self.base_preds:
            for tup in sorted(self.facts[pred]):
                lines.append(f"{pred}({tup[0]}, {tup[1]}).")
        lines.append("")
        lines.append(f"module gen{self.seed}.")
        if flags:
            lines.append(flags.rstrip())
        for pred in self.derived_preds:
            lines.append(f"export {pred}(ff, bf).")
        lines.extend(self.rules)
        lines.append("end_module.")
        return "\n".join(lines) + "\n"


def _evaluate(program: str, queries, memo=None, compiled=None):
    """All query answers for one engine configuration, as sorted lists."""
    kwargs = {}
    if memo is not None:
        kwargs["memo"] = memo
    if compiled is not None:
        kwargs["compiled"] = compiled
    session = Session(**kwargs)
    session.consult_string(program)
    return {q: sorted(set(session.query(q).tuples())) for q in queries}


def _dump_failure(case, detail: str) -> Path:
    _FAILURE_DIR.mkdir(exist_ok=True)
    path = _FAILURE_DIR / f"seed_{case.seed}.txt"
    path.write_text(
        f"# differential-testing failure, seed={case.seed}\n"
        f"# replay: consult the program below and run the queries\n\n"
        f"{case.program()}\n"
        f"# queries: {case.queries}\n\n{detail}\n"
    )
    return path


def _assert_same(case, baseline, other, engine, extra=""):
    for query, expected in baseline.items():
        got = other[query]
        if got != expected:
            path = _dump_failure(
                case,
                f"# engine: {engine}\n# query: {query}\n"
                f"# expected (default): {expected}\n# got: {got}\n{extra}",
            )
            pytest.fail(
                f"seed {case.seed}: engine {engine} disagrees on {query} "
                f"(expected {expected}, got {got}); repro dumped to {path}"
            )


# ---------------------------------------------------------------------------
# static programs: the full engine matrix must agree
# ---------------------------------------------------------------------------


_ENGINE_FLAGS = {
    "magic": "@magic.",
    "no_rewriting": "@no_rewriting.",
    "psn": "@psn.",
    "compiled": "@compiled.",
    "push": "@compiled(push).",
}


@pytest.mark.parametrize("seed", range(_N_STATIC))
def test_static_engines_agree(seed):
    # every third seed exercises stratified negation on the materialized
    # semi-naive configurations; the rest run the full engine matrix
    negated_case = seed % 3 == 2
    case = GeneratedCase(seed, allow_negation=negated_case)

    baseline = _evaluate(case.program(), case.queries)
    memo_run = _evaluate(case.program(), case.queries, memo=True)
    _assert_same(case, baseline, memo_run, "memo")

    engines = (
        # negation: the materialized semi-naive configurations, plus the
        # push backend, whose per-rule fallback must keep negated rules on
        # the interpreter and still agree
        {
            "psn": "@psn.",
            "no_rewriting": "@no_rewriting.",
            "push": "@compiled(push).",
        }
        if case.has_negation
        else _ENGINE_FLAGS
    )
    for engine, flags in engines.items():
        run = _evaluate(case.program(flags), case.queries)
        _assert_same(case, baseline, run, engine)

    # the session-wide default must behave exactly like the module flag
    run = _evaluate(case.program(), case.queries, compiled="push")
    _assert_same(case, baseline, run, "push-session-default")

    if not case.recursive and not case.has_negation:
        run = _evaluate(case.program("@pipelining."), case.queries)
        _assert_same(case, baseline, run, "pipelining")


# ---------------------------------------------------------------------------
# query/update interleavings: persistent sessions vs cold rebuilds
# ---------------------------------------------------------------------------


def _random_ops(rng, case, count=8):
    """Interleaved inserts/deletes/queries over the base relations."""
    ops = []
    live = {pred: set(tuples) for pred, tuples in case.facts.items()}
    for i in range(count):
        kind = rng.choice(["insert", "delete", "query", "query"])
        if kind == "insert":
            pred = rng.choice(case.base_preds)
            tup = (rng.choice(case.domain), rng.choice(case.domain))
            live[pred].add(tup)
            ops.append(("insert", pred, tup))
        elif kind == "delete":
            pred = rng.choice(case.base_preds)
            if not live[pred]:
                continue
            tup = rng.choice(sorted(live[pred]))
            live[pred].discard(tup)
            ops.append(("delete", pred, tup))
        else:
            ops.append(("query", rng.choice(case.queries), dict(
                (p, frozenset(t)) for p, t in live.items()
            )))
    if not any(op[0] == "query" for op in ops):
        ops.append(("query", case.queries[0], dict(
            (p, frozenset(t)) for p, t in live.items()
        )))
    return ops


@pytest.mark.parametrize("seed", range(10_000, 10_000 + _N_INTERLEAVED))
def test_update_interleavings_agree(seed):
    case = GeneratedCase(seed, allow_negation=seed % 4 == 3)
    rng = random.Random(seed ^ 0xDEADBEEF)
    ops = _random_ops(rng, case)

    memo_session = Session(memo=True)
    memo_session.consult_string(case.program())
    plain_session = Session()
    plain_session.consult_string(case.program())

    trail = []
    for op in ops:
        if op[0] in ("insert", "delete"):
            kind, pred, tup = op
            getattr(memo_session, kind)(pred, *tup)
            getattr(plain_session, kind)(pred, *tup)
            trail.append(f"{kind} {pred}{tup}")
            continue

        _, query, live = op
        # a cold session over the current fact state is ground truth
        saved = case.facts
        case.facts = {pred: set(t) for pred, t in live.items()}
        cold = _evaluate(case.program(), [query])[query]
        program_now = case.program()
        case.facts = saved

        got_memo = sorted(set(memo_session.query(query).tuples()))
        got_plain = sorted(set(plain_session.query(query).tuples()))
        detail = "# ops so far:\n# " + "\n# ".join(trail or ["(none)"])
        if got_plain != cold or got_memo != cold:
            path = _dump_failure(
                case,
                f"# query after updates: {query}\n"
                f"# cold (ground truth): {cold}\n"
                f"# persistent no-memo:  {got_plain}\n"
                f"# persistent memo:     {got_memo}\n"
                f"# program at failure:\n{program_now}\n{detail}",
            )
            pytest.fail(
                f"seed {seed}: after updates, {query} diverged "
                f"(cold={cold}, plain={got_plain}, memo={got_memo}); "
                f"repro dumped to {path}"
            )
        trail.append(f"query {query} -> {len(cold)} answers")


# ---------------------------------------------------------------------------
# streamed-deltas mode: fold a subscription's delta stream, compare cold
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20_000, 20_000 + _N_LIVE))
def test_streamed_deltas_fold_to_cold_truth(seed):
    """Subscribe to a generated query, replay a random update schedule,
    fold the delta stream into the snapshot, and require the folded view
    to equal a cold re-evaluation at every query checkpoint."""
    from repro.terms import from_arg

    case = GeneratedCase(seed, allow_negation=False)
    rng = random.Random(seed ^ 0xBEEF)
    ops = _random_ops(rng, case)
    # every schedule folds the free query; odd seeds add a bound goal too
    queries = [case.queries[0]]
    if seed % 2:
        queries.append(case.queries[1])

    session = Session()
    session.consult_string(case.program())

    folded = {}  # query -> {tuple.key(): python-value tuple}
    views = {}
    for query in queries:
        state = folded[query] = {}

        def sink(deltas, state=state):
            for sign, tup in deltas:
                if sign > 0:
                    state[tup.key()] = tuple(from_arg(a) for a in tup.args)
                else:
                    state.pop(tup.key(), None)

        view = session.subscribe(f"?- {query}.", sink)
        views[query] = view
        for tup in view.snapshot():
            state[tup.key()] = tuple(from_arg(a) for a in tup.args)

    trail = []
    for op in ops:
        if op[0] in ("insert", "delete"):
            kind, pred, tup = op
            getattr(session, kind)(pred, *tup)
            trail.append(f"{kind} {pred}{tup}")
            continue
        _, _, live = op
        saved = case.facts
        case.facts = {pred: set(t) for pred, t in live.items()}
        cold_all = _evaluate(case.program(), queries)
        case.facts = saved
        for query in queries:
            cold = cold_all[query]
            got = sorted(set(folded[query].values()))
            if got != cold:
                detail = "# ops so far:\n# " + "\n# ".join(trail or ["(none)"])
                path = _dump_failure(
                    case,
                    f"# streamed-deltas divergence on: {query}\n"
                    f"# cold (ground truth): {cold}\n"
                    f"# folded delta stream: {got}\n"
                    f"# view: {views[query]!r}\n{detail}",
                )
                pytest.fail(
                    f"seed {seed}: folded delta stream for {query} diverged "
                    f"(cold={cold}, folded={got}); repro dumped to {path}"
                )
        trail.append(f"checkpoint -> ok")

    # final checkpoint regardless of the schedule's query placement
    for query in queries:
        cold = sorted(set(session.query(query).tuples()))
        got = sorted(set(folded[query].values()))
        assert got == cold, (
            f"seed {seed}: final folded view for {query} diverged: "
            f"cold={cold}, folded={got}"
        )
