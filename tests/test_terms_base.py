"""Unit tests for the Arg hierarchy: primitive constants, conversion."""

import pytest

from repro.terms import (
    Arg,
    Atom,
    BigNum,
    Double,
    Functor,
    Int,
    NIL,
    Str,
    from_arg,
    make_list,
    to_arg,
)


class TestPrimitives:
    def test_int_equality(self):
        assert Int(5) == Int(5)
        assert Int(5) != Int(6)
        assert Int(5).equals(Int(5))

    def test_int_hash_consistent_with_equality(self):
        assert hash(Int(42)) == hash(Int(42))
        assert Int(42).hash_value() == Int(42).hash_value()

    def test_bignum_is_an_int(self):
        huge = BigNum(10**100)
        assert huge == Int(10**100)
        assert huge.value == 10**100

    def test_double_and_int_are_distinct_types(self):
        assert Double(1.0) != Int(1)

    def test_str_and_atom_are_distinct(self):
        assert Str("john") != Atom("john")

    def test_atom_name(self):
        assert Atom("john").name == "john"
        assert str(Atom("john")) == "john"

    def test_str_prints_quoted(self):
        assert str(Str("hi")) == '"hi"'

    def test_primitives_are_immutable(self):
        with pytest.raises(AttributeError):
            Int(1).value = 2

    def test_primitives_are_ground(self):
        for term in (Int(1), Double(2.0), Str("x"), Atom("a")):
            assert term.is_ground()
            assert list(term.variables()) == []

    def test_ground_key_distinguishes_types(self):
        assert Int(1).ground_key() != Double(1.0).ground_key()
        assert Str("a").ground_key() != Atom("a").ground_key()

    def test_construct_round_trip(self):
        assert Int.construct(7) == Int(7)
        assert Atom.construct("abc") == Atom("abc")


class TestConversion:
    def test_to_arg_int(self):
        assert to_arg(3) == Int(3)

    def test_to_arg_bool_becomes_atom(self):
        assert to_arg(True) == Atom("true")
        assert to_arg(False) == Atom("false")

    def test_to_arg_float(self):
        assert to_arg(2.5) == Double(2.5)

    def test_to_arg_identifier_string_becomes_atom(self):
        assert to_arg("john") == Atom("john")

    def test_to_arg_non_identifier_string_becomes_str(self):
        assert to_arg("hello world") == Str("hello world")
        assert to_arg("John") == Str("John")  # uppercase: not an atom

    def test_to_arg_list(self):
        assert to_arg([1, 2]) == make_list([Int(1), Int(2)])

    def test_to_arg_passthrough(self):
        term = Functor("f", (Int(1),))
        assert to_arg(term) is term

    def test_to_arg_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_arg(object())

    def test_from_arg_round_trip(self):
        assert from_arg(to_arg(3)) == 3
        assert from_arg(to_arg(2.5)) == 2.5
        assert from_arg(to_arg("john")) == "john"
        assert from_arg(to_arg([1, [2, 3]])) == [1, [2, 3]]

    def test_from_arg_nil_is_empty_list(self):
        assert from_arg(NIL) == "[]"  # NIL is the atom "[]"
        assert from_arg(make_list([])) == "[]"
