"""Tests for the static checker (the §9 'Type Information' gap, filled),
the assertz/retract update builtins (§5.2 side effects), and text-file
dump/consult round-trips (§2)."""

import pytest

from repro import Session
from repro.lint import ProgramChecker, check_source


class TestLintUnknownPredicates:
    def test_typo_detected(self):
        findings = check_source(
            """
            module m.
            export path(bf).
            path(X, Y) :- edgee(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            edge(1, 2).
            """
        )
        codes = [f.code for f in findings]
        assert "unknown-predicate" in codes
        assert any("edgee" in f.message for f in findings)

    def test_known_predicates_from_session(self):
        session = Session()
        session.insert("edge", 1, 2)
        findings = check_source(
            """
            module m.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """,
            session,
        )
        assert not [f for f in findings if f.code == "unknown-predicate"]

    def test_builtins_are_known(self):
        session = Session()
        session.insert("n", 1)
        findings = check_source(
            "module m. export p(f). p(Y) :- n(X), Y = X + 1. end_module.",
            session,
        )
        assert not [f for f in findings if f.code == "unknown-predicate"]

    def test_arity_clash(self):
        findings = check_source(
            """
            module m.
            export p(f).
            p(X) :- edge(X).
            end_module.
            edge(1, 2).
            """
        )
        assert any(f.code == "arity-clash" for f in findings)


class TestLintVariables:
    def test_singleton_flagged(self):
        findings = check_source(
            "module m. export p(f). p(X) :- q(X, Unused). end_module. q(1, 2)."
        )
        assert any(
            f.code == "singleton-variable" and "Unused" in f.message
            for f in findings
        )

    def test_underscore_not_flagged(self):
        findings = check_source(
            "module m. export p(f). p(X) :- q(X, _). end_module. q(1, 2)."
        )
        assert not any(f.code == "singleton-variable" for f in findings)

    def test_unsafe_rule_flagged(self):
        findings = check_source(
            "module m. export p(ff). p(X, Y) :- q(X). end_module. q(1)."
        )
        assert any(f.code == "unsafe-rule" for f in findings)

    def test_unsafe_negation_flagged(self):
        findings = check_source(
            """
            module m.
            export p(f).
            p(X) :- q(X), not r(X, Z).
            end_module.
            q(1). r(1, 2).
            """
        )
        assert any(f.code == "unsafe-negation" for f in findings)

    def test_clean_program_no_findings(self):
        session = Session()
        session.insert("edge", 1, 2)
        findings = check_source(
            """
            module m.
            export path(bf).
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            end_module.
            """,
            session,
        )
        assert findings == []


class TestLintTypes:
    def test_type_conflict_detected(self):
        findings = check_source(
            'age(john, 32). age(mary, "thirty").'
        )
        assert any(f.code == "type-conflict" for f in findings)

    def test_consistent_types_pass(self):
        findings = check_source("age(john, 32). age(mary, 30).")
        assert not any(f.code == "type-conflict" for f in findings)


class TestUpdateBuiltins:
    def test_assertz_from_pipelined_module(self):
        session = Session()
        session.consult_string(
            """
            raw(1). raw(2). raw(3).

            module loader.
            export load(f).
            @pipelining.
            load(X) :- raw(X), Y = X * 10, assertz(scaled(Y)).
            end_module.
            """
        )
        session.query("load(X)").all()
        assert sorted(r[0] for r in session.query("scaled(V)").tuples()) == [
            10, 20, 30,
        ]

    def test_retract(self):
        session = Session()
        session.insert("flag", 1)
        session.consult_string(
            """
            module m.
            export clear(b).
            @pipelining.
            clear(X) :- retract(flag(X)).
            end_module.
            """
        )
        assert len(session.query("clear(1)").all()) == 1
        assert len(session.query("flag(X)").all()) == 0

    def test_retract_missing_fact_fails(self):
        session = Session()
        session.consult_string(
            """
            module m.
            export clear(b).
            @pipelining.
            clear(X) :- retract(nothing(X)).
            end_module.
            """
        )
        assert len(session.query("clear(1)").all()) == 0


class TestTextFilePersistence:
    def test_dump_and_reconsult_round_trip(self, tmp_path):
        session = Session()
        session.insert("edge", 1, 2)
        session.insert("edge", "a", "b")
        session.relation("edge", 2).insert_values("note", "hello world")
        path = tmp_path / "edges.coral"
        written = session.dump_relation("edge", 2, str(path))
        assert written == 3

        fresh = Session()
        fresh.consult(str(path))
        assert len(fresh.query("edge(X, Y)").all()) == 3
        assert len(fresh.query('edge(note, "hello world")').all()) == 1

    def test_dump_non_ground_fact(self, tmp_path):
        session = Session()
        session.consult_string("always(X).")
        path = tmp_path / "univ.coral"
        session.dump_relation("always", 1, str(path))
        fresh = Session()
        fresh.consult(str(path))
        assert len(fresh.query("always(42)").all()) == 1

    def test_consult_command_in_file(self, tmp_path):
        data = tmp_path / "data.coral"
        data.write_text("edge(1, 2). edge(2, 3).")
        main = tmp_path / "main.coral"
        main.write_text(
            '@consult "data.coral".\n'
            "module tc.\n"
            "export path(bf).\n"
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
            "end_module.\n"
        )
        session = Session()
        session.consult(str(main))
        assert sorted(a["Y"] for a in session.query("path(1, Y)")) == [2, 3]


class TestAblationFlags:
    def test_no_backjumping_same_answers(self):
        program = """
        edge(1, 2). edge(2, 3). edge(3, 4).
        module m.
        export p(bf).
        {flags}
        p(X, Y) :- edge(X, Y).
        p(X, Y) :- edge(X, Z), p(Z, Y).
        end_module.
        """
        plain = Session()
        plain.consult_string(program.format(flags=""))
        ablated = Session()
        ablated.consult_string(program.format(flags="@no_backjumping.\n@no_index_selection."))
        assert sorted(a["Y"] for a in plain.query("p(1, Y)")) == sorted(
            a["Y"] for a in ablated.query("p(1, Y)")
        )
        compiled = ablated.modules.compiled_form("m", "p", "bf")
        assert not compiled.use_backjumping
        assert not compiled.base_index_specs
