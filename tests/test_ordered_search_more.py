"""Deeper tests for Ordered Search (Section 5.4.1): modularly stratified
negation and aggregation patterns beyond win/move."""

import pytest

from repro import Session
from repro.errors import StratificationError


class TestModularlyStratifiedNegation:
    def test_even_odd_over_successor(self):
        """even(X) :- not even(X-1): stratified *per subgoal*, not per
        predicate — the canonical modularly stratified example."""
        session = Session()
        session.consult_string(
            "".join(f"succ({i}, {i+1}). " for i in range(10))
            + """
            module parity.
            export even(b).
            @ordered_search.
            even(0).
            even(X) :- succ(Y, X), not even(Y).
            end_module.
            """
        )
        for n in range(10):
            holds = len(session.query(f"even({n})").all()) == 1
            assert holds == (n % 2 == 0), n

    def test_mutual_negation_through_subgoals(self):
        """Two predicates negating each other along an acyclic order."""
        session = Session()
        session.consult_string(
            "".join(f"succ({i}, {i+1}). " for i in range(8))
            + """
            module duel.
            export high(b).
            export low(b).
            @ordered_search.
            low(0).
            high(X) :- succ(Y, X), not high(Y), low(Y).
            low(X) :- succ(Y, X), not high(X), low(Y).
            end_module.
            """
        )
        # high alternates: high(1), low everywhere, high at odd positions
        assert len(session.query("high(1)").all()) == 1
        assert len(session.query("high(2)").all()) == 0

    def test_positive_recursion_inside_ordered_search(self):
        """Ordered search must still compute ordinary positive recursion
        (subgoal SCC fixpoints)."""
        session = Session()
        session.consult_string(
            "edge(a, b). edge(b, c). edge(c, a). edge(c, d)."
            + """
            module tc.
            export reach(bf).
            @ordered_search.
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            end_module.
            """
        )
        answers = sorted(a["Y"] for a in session.query("reach(a, Y)"))
        assert answers == ["a", "b", "c", "d"]

    def test_memoization_across_subgoals(self):
        """The same subgoal reached from two places is evaluated once."""
        session = Session()
        session.consult_string(
            "edge(a, c). edge(b, c). edge(c, d). edge(d, e)."
            + """
            module tc.
            export reach(bf).
            @ordered_search.
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            end_module.
            """
        )
        session.query("reach(a, Y)").all()
        subgoals_first = session.stats.subgoals
        session.query("reach(b, Y)").all()
        # b's query creates b's own subgoal (plus nothing else new would be
        # ideal; fresh instances recompute, so just check it's bounded)
        assert session.stats.subgoals <= subgoals_first * 2 + 1


class TestOrderedSearchAggregation:
    def test_aggregation_over_completed_subgoal(self):
        session = Session()
        session.consult_string(
            "score(t1, 3). score(t1, 5). score(t2, 9)."
            + """
            module m.
            export team_best(bf).
            @ordered_search.
            team_best(T, max(<S>)) :- score(T, S).
            end_module.
            """
        )
        assert [a["B"] for a in session.query("team_best(t1, B)")] == [5]

    def test_nested_aggregation_through_derived_pred(self):
        session = Session()
        session.consult_string(
            "pay(alice, dev, 120). pay(bob, dev, 100). pay(carol, ops, 90)."
            + """
            module m.
            export dept_total(bf).
            @ordered_search.
            member_pay(D, P) :- pay(E, D, P).
            dept_total(D, sum(<P>)) :- member_pay(D, P).
            end_module.
            """
        )
        assert [a["T"] for a in session.query("dept_total(dev, T)")] == [220]

    def test_figure_3_fallback_engages_ordered_search(self):
        """The Figure 3 program's magic rewriting is unstratified; the
        optimizer must engage the ordered-search fallback automatically."""
        session = Session()
        session.consult_string(
            "edge(a, b, 1)."
            + """
            module s_p.
            export s_p(bfff).
            @aggregate_selection p(X, Y, P, C) (X, Y) min(C).
            s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
            s_p_length(X, Y, min(<C>)) :- p(X, Y, P, C).
            p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                               append([edge(Z, Y)], P, P1), C1 = C + EC.
            p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
            end_module.
            """
        )
        session.query("s_p(a, Y, P, C)").all()
        compiled = session.modules.compiled_form("s_p", "s_p", "bfff")
        assert compiled.ordered_search
        assert compiled.rewritten.technique == "none"

    def test_aggregate_selection_applies_per_subgoal(self):
        """Aggregate selections prune inside ordered-search memo tables."""
        session = Session()
        session.consult_string(
            "edge(a, b, 9). edge(a, b, 2). edge(b, c, 1)."
            + """
            module m.
            export cheap(bff).
            @ordered_search.
            @aggregate_selection c(X, Y, C) (X, Y) min(C).
            c(X, Y, C) :- edge(X, Y, C).
            c(X, Y, C) :- edge(X, Z, C1), c(Z, Y, C2), C = C1 + C2.
            cheap(X, Y, C) :- c(X, Y, C).
            end_module.
            """
        )
        answers = {(a["Y"], a["C"]) for a in session.query("cheap(a, Y, C)")}
        assert answers == {("b", 2), ("c", 3)}
