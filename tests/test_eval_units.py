"""Unit + property tests for the evaluation layer: the join executor,
backjumping, aggregate folds/constraints, and fixpoint strategy agreement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Session
from repro.errors import EvaluationError
from repro.eval.aggregates import AggregateConstraint, fold_aggregate
from repro.eval.context import EvalContext, LocalScope
from repro.eval.join import BodyExecutor, backtrack_points
from repro.language import parse_module
from repro.language.ast import AggregateSelection, Literal
from repro.relations import HashRelation, Tuple
from repro.rewriting.seminaive import ScanKind, SNLiteral
from repro.terms import Atom, BindEnv, Double, Int, Trail, Var, resolve


def t(*values):
    return Tuple(tuple(Int(v) if isinstance(v, int) else Atom(v) for v in values))


def sn(literal):
    return SNLiteral(literal, ScanKind.ALL)


@pytest.fixture
def scope():
    ctx = EvalContext()
    scope = LocalScope(ctx)
    return scope


class TestBodyExecutor:
    def _fill(self, scope, name, arity, rows):
        relation = scope.ctx.base_relation(name, arity)
        for row in rows:
            relation.insert(t(*row))
        return relation

    def test_single_literal_join(self, scope):
        self._fill(scope, "e", 2, [(1, 2), (2, 3)])
        x, y = Var("X"), Var("Y")
        executor = BodyExecutor(scope, [sn(Literal("e", (x, y)))])
        env, trail = BindEnv(), Trail()
        solutions = []
        for _ in executor.solutions(env, trail):
            solutions.append((resolve(x, env), resolve(y, env)))
        assert sorted(s[0].value for s in solutions) == [1, 2]

    def test_join_through_shared_variable(self, scope):
        self._fill(scope, "e", 2, [(1, 2), (2, 3), (3, 4)])
        x, y, z = Var("X"), Var("Y"), Var("Z")
        executor = BodyExecutor(
            scope, [sn(Literal("e", (x, y))), sn(Literal("e", (y, z)))]
        )
        env, trail = BindEnv(), Trail()
        chains = []
        for _ in executor.solutions(env, trail):
            chains.append(
                (resolve(x, env).value, resolve(y, env).value, resolve(z, env).value)
            )
        assert sorted(chains) == [(1, 2, 3), (2, 3, 4)]

    def test_empty_body_yields_once(self, scope):
        executor = BodyExecutor(scope, [])
        assert sum(1 for _ in executor.solutions(BindEnv(), Trail())) == 1

    def test_builtin_between_scans(self, scope):
        self._fill(scope, "n", 1, [(1,), (5,), (9,)])
        x = Var("X")
        executor = BodyExecutor(
            scope, [sn(Literal("n", (x,))), sn(Literal(">", (x, Int(3))))]
        )
        env, trail = BindEnv(), Trail()
        values = [resolve(x, env).value for _ in executor.solutions(env, trail)]
        assert sorted(values) == [5, 9]

    def test_negated_literal(self, scope):
        self._fill(scope, "n", 1, [(1,), (2,)])
        self._fill(scope, "bad", 1, [(2,)])
        x = Var("X")
        executor = BodyExecutor(
            scope,
            [sn(Literal("n", (x,))), sn(Literal("bad", (x,), negated=True))],
        )
        env, trail = BindEnv(), Trail()
        values = [resolve(x, env).value for _ in executor.solutions(env, trail)]
        assert values == [1]

    def test_bindings_undone_between_solutions(self, scope):
        self._fill(scope, "e", 1, [(1,), (2,)])
        x = Var("X")
        executor = BodyExecutor(scope, [sn(Literal("e", (x,)))])
        env, trail = BindEnv(), Trail()
        iterator = executor.solutions(env, trail)
        next(iterator)
        first = resolve(x, env)
        next(iterator)
        second = resolve(x, env)
        assert first != second

    def test_backjumping_skips_unrelated_literal(self, scope):
        """b's alternatives can't fix c(X), so backjump lands on a."""
        self._fill(scope, "a", 1, [(1,), (2,)])
        self._fill(scope, "b", 1, [(10,), (20,), (30,)])
        self._fill(scope, "c", 1, [(2,)])
        x, y = Var("X"), Var("Y")
        body = [
            sn(Literal("a", (x,))),
            sn(Literal("b", (y,))),
            sn(Literal("c", (x,))),
        ]
        executor = BodyExecutor(scope, body, use_backjumping=True)
        env, trail = BindEnv(), Trail()
        count = sum(1 for _ in executor.solutions(env, trail))
        assert count == 3  # X=2 with each of b's three tuples

        plain = BodyExecutor(scope, body, use_backjumping=False)
        count_plain = sum(1 for _ in plain.solutions(BindEnv(), Trail()))
        assert count_plain == 3  # same answers, more work

    def test_backtrack_points_computed(self):
        x, y, z = Var("X"), Var("Y"), Var("Z")
        body = [
            sn(Literal("a", (x,))),
            sn(Literal("b", (y,))),
            sn(Literal("c", (x, z))),
        ]
        assert backtrack_points(body) == [-1, -1, 0]


class TestAggregateFolds:
    def test_all_functions(self):
        values = [Int(3), Int(1), Int(2)]
        assert fold_aggregate("min", values) == Int(1)
        assert fold_aggregate("max", values) == Int(3)
        assert fold_aggregate("sum", values) == Int(6)
        assert fold_aggregate("prod", values) == Int(6)
        assert fold_aggregate("count", values) == Int(3)
        assert fold_aggregate("any", values) == Int(3)  # first seen

    def test_mixed_int_double(self):
        assert fold_aggregate("sum", [Int(1), Double(0.5)]) == Double(1.5)

    def test_empty_group_count_zero(self):
        assert fold_aggregate("count", []) == Int(0)

    def test_empty_group_min_rejected(self):
        with pytest.raises(EvaluationError):
            fold_aggregate("min", [])

    def test_non_numeric_min_rejected(self):
        with pytest.raises(EvaluationError):
            fold_aggregate("min", [Atom("a")])


class TestAggregateConstraint:
    def _min_constraint(self):
        x, y, c = Var("X"), Var("Y"), Var("C")
        return AggregateConstraint(
            AggregateSelection("p", (x, y, c), (x, y), "min", c)
        )

    def test_better_fact_evicts_worse(self):
        constraint = self._min_constraint()
        relation = HashRelation("p", 3)
        worse, better = t(1, 2, 10), t(1, 2, 5)
        assert constraint.admit(relation, worse)
        relation.insert(worse)
        constraint.record(relation, worse)
        assert constraint.admit(relation, better)  # evicts `worse`
        relation.insert(better)
        constraint.record(relation, better)
        assert len(relation) == 1
        assert not relation.contains(worse)

    def test_worse_fact_rejected(self):
        constraint = self._min_constraint()
        relation = HashRelation("p", 3)
        best = t(1, 2, 5)
        constraint.admit(relation, best)
        relation.insert(best)
        constraint.record(relation, best)
        assert not constraint.admit(relation, t(1, 2, 9))

    def test_ties_kept(self):
        constraint = self._min_constraint()
        relation = HashRelation("p", 3)
        for fact in (t(1, 2, 5), t(1, 3, 5)):
            pass
        a, b = t(1, 2, 5), t(1, 2, 5)
        constraint.admit(relation, a)
        relation.insert(a)
        constraint.record(relation, a)
        tie = Tuple((Int(1), Int(2), Int(5)))
        assert constraint.admit(relation, tie)  # equal cost admitted

    def test_groups_independent(self):
        constraint = self._min_constraint()
        relation = HashRelation("p", 3)
        first_group = t(1, 2, 5)
        constraint.admit(relation, first_group)
        relation.insert(first_group)
        constraint.record(relation, first_group)
        other_group = t(9, 9, 100)
        assert constraint.admit(relation, other_group)

    def test_any_keeps_single_witness(self):
        x, y = Var("X"), Var("Y")
        constraint = AggregateConstraint(
            AggregateSelection("p", (x, y), (x,), "any", y)
        )
        relation = HashRelation("p", 2)
        first = t(1, 7)
        assert constraint.admit(relation, first)
        relation.insert(first)
        constraint.record(relation, first)
        assert not constraint.admit(relation, t(1, 8))
        assert constraint.admit(relation, t(2, 8))


def _random_graph_program(edges):
    facts = " ".join(f"edge({a}, {b})." for a, b in sorted(set(edges)))
    return (
        facts
        + """
        module tc.
        export path(bf).
        %s
        path(X, Y) :- edge(X, Y).
        path(X, Y) :- edge(X, Z), path(Z, Y).
        end_module.
        """
    )


class TestStrategyAgreement:
    @settings(max_examples=20, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=1,
            max_size=16,
        ),
        source=st.integers(0, 7),
    )
    def test_bsn_psn_pipelining_agree_on_reachability(self, edges, source):
        """On arbitrary small graphs (cycles included), BSN, PSN and the
        unrewritten bottom-up evaluation must compute identical answers."""
        answers = {}
        for flag in ("", "@psn.", "@no_rewriting."):
            session = Session()
            session.consult_string(_random_graph_program(edges) % flag)
            answers[flag] = sorted(
                a["Y"] for a in session.query(f"path({source}, Y)")
            )
        assert answers[""] == answers["@psn."] == answers["@no_rewriting."]

    @settings(max_examples=10, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=10,
        ),
        source=st.integers(0, 5),
    )
    def test_matches_networkx_reachability(self, edges, source):
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(6))
        graph.add_edges_from(edges)
        reachable = set(nx.descendants(graph, source))
        # Datalog's path(s, s) holds when s lies on a cycle (networkx's
        # descendants() always excludes the source)
        if any(
            nx.has_path(graph, successor, source)
            for successor in graph.successors(source)
        ):
            reachable.add(source)
        expected = sorted(reachable)
        session = Session()
        session.consult_string(_random_graph_program(edges) % "")
        got = sorted(a["Y"] for a in session.query(f"path({source}, Y)"))
        assert got == expected
