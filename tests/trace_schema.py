"""Golden-schema validator for assembled Chrome traces.

Checked in next to the tests, like ``prom_parser.py``: imported by
``tests/test_disttrace.py`` (which validates synthetic and in-process
traces) *and* by the CI ``trace-smoke`` job (which validates the trace a
real router + workers + replica cluster assembled).  It therefore checks
structure against ``tests/golden/chrome_trace_disttrace.json`` — phases,
categories, links, rebased timestamps — never specific span names.

Deliberately dependency-free (no pytest): smoke jobs run it with nothing
installed beyond the stdlib.
"""

import json
import os

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "chrome_trace_disttrace.json"
)


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def validate_chrome_trace(trace, golden=None):
    """Check an assembled Chrome trace against the golden *schema*.
    Raises AssertionError naming the failing property; returns True."""
    if golden is None:
        golden = load_golden()
    assert sorted(trace.keys()) == golden["top_level_keys"], sorted(trace)
    assert trace["displayTimeUnit"] == golden["displayTimeUnit"]
    other = trace["otherData"]
    assert sorted(other.keys()) == golden["other_data_keys"], sorted(other)
    assert other["producer"] == golden["producer"]
    events = trace["traceEvents"]
    assert events, "assembled trace has no events"
    assert {e["ph"] for e in events} <= set(golden["allowed_phases"])
    spans = [e for e in events if e["ph"] != "M"]
    assert spans, "assembled trace has no span events"
    for event in spans:
        assert event["cat"] == golden["category"], event
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        assert event["ts"] >= 0.0, "timestamps must be rebased to >= 0"
        if golden["complete_events_have_dur"] and event["ph"] == "X":
            assert "dur" in event and event["dur"] >= 0.0, event
        if golden["instants_are_thread_scoped"] and event["ph"] == "i":
            assert event.get("s") == "t", event
        if golden["spans_carry_links"]:
            assert {"span", "parent", "depth"} <= set(event["args"]), event
    if golden["metadata_names_processes"]:
        metadata = [e for e in events if e["ph"] == "M"]
        named = {e["args"]["name"] for e in metadata}
        assert named == set(other["processes"]), (named, other["processes"])
    return True
